//! The three differential oracles (§6 of the reproduction's DESIGN notes).
//!
//! Every candidate program — generated, minimized, or replayed from the
//! committed corpus — is pushed through the same checks:
//!
//! 1. **Differential output**: the uninstrumented baseline run and every
//!    `Mechanism × {unoptimized, block-local, cfg}` instrumented run must
//!    agree on exit status and printed output. A well-defined MiniC program never
//!    observes the PAC machinery, so any divergence is a pipeline bug (or,
//!    for hand-written attack programs, a detection — which is why the
//!    committed corpus contains only post-fix *passing* programs).
//! 2. **IR verification**: `rsti_ir::verify_module` must accept the module
//!    after every pass boundary — lower, instrument, optimize.
//! 3. **No panics**: every stage runs under `catch_unwind`; a panic anywhere
//!    in the frontend, a pass, or the VM is a reportable failure even when
//!    the output would otherwise agree.
//! 4. **Backend equivalence**: every VM run in the matrix executes under
//!    both engines — the interpreter and the closure-threaded compiled
//!    engine — and the complete [`rsti_vm::ExecResult`]s (status, output,
//!    cycle/instruction totals, PAC counters, audit records) must be
//!    identical. The interpreter is the compiled engine's oracle.
//!
//! Failures carry a stable [`FailureKind::class_key`] so the delta-debugging
//! reducer can insist that a shrunken candidate reproduces the *same* bug,
//! not merely *a* bug.

use rsti_core::{instrument, optimize_module, Mechanism, OptLevel};
use rsti_frontend::ast::Item;
use rsti_frontend::{ast_eq_items, compile, parse, print_items};
use rsti_ir::verify_module;
use rsti_ir::Module;
use rsti_vm::{ExecBackend, ExecResult, Image, Status, Trap, Vm};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Instruction budget per VM run. Generated programs finish in well under a
/// million instructions; the cap exists so a reducer candidate that deletes a
/// loop counter update cannot hang the campaign. Runs that exhaust fuel are
/// treated as inconclusive (instrumented runs execute strictly more
/// instructions than the baseline, so a shared cap would otherwise produce
/// false divergences).
pub const FUEL: u64 = 50_000_000;

/// One oracle violation. The `detail`/`base`/`got` payloads are for humans;
/// the machine identity of a failure is [`FailureKind::class_key`].
#[derive(Debug, Clone, PartialEq)]
pub enum FailureKind {
    /// `parse(print(ast))` did not return the same AST (or failed to parse).
    RoundTrip {
        /// What broke: the parse error, or a note that the ASTs differ.
        detail: String,
    },
    /// The frontend rejected a program it should accept.
    CompileError {
        /// The diagnostic message (line numbers stripped: they shift as the
        /// reducer deletes statements, but the message is stable).
        detail: String,
    },
    /// The frontend panicked instead of returning a diagnostic.
    FrontendPanic {
        /// Panic payload.
        detail: String,
    },
    /// `verify_module` rejected the IR after a pass boundary.
    VerifyReject {
        /// Pass that produced the ill-formed module: `lower`, `instrument`,
        /// or `optimize`.
        stage: String,
        /// Pipeline configuration label (e.g. `stwc+opt`).
        config: String,
        /// First verifier error.
        detail: String,
    },
    /// An instrumentation or optimization pass panicked.
    PassPanic {
        /// Pass that panicked.
        stage: String,
        /// Pipeline configuration label.
        config: String,
        /// Panic payload.
        detail: String,
    },
    /// The VM panicked (every abnormal stop must be a structured `Trap`).
    VmPanic {
        /// Pipeline configuration label.
        config: String,
        /// Panic payload.
        detail: String,
    },
    /// Baseline and instrumented runs ended differently.
    StatusDivergence {
        /// Pipeline configuration label.
        config: String,
        /// Baseline status, `Debug`-formatted.
        base: String,
        /// Instrumented status, `Debug`-formatted.
        got: String,
    },
    /// Same status, different printed output.
    OutputDivergence {
        /// Pipeline configuration label.
        config: String,
        /// First differing line, `base` vs `got`.
        detail: String,
    },
    /// The compiled engine disagreed with the interpreter on the same image.
    BackendDivergence {
        /// Pipeline configuration label.
        config: String,
        /// First differing `ExecResult` field, interpreter vs compiled.
        detail: String,
    },
}

impl FailureKind {
    /// Stable identity of the failure, used by the reducer to accept a
    /// candidate only when it reproduces the *same* bug.
    ///
    /// Volatile payloads (panic messages, trap positions, output text) are
    /// excluded: they legitimately change as the reducer deletes statements.
    /// The component that failed — stage plus pipeline configuration — is
    /// what identifies a bug. `CompileError` keeps its message because for a
    /// frontend-reject bug the diagnostic *is* the identity.
    pub fn class_key(&self) -> String {
        match self {
            FailureKind::RoundTrip { .. } => "roundtrip".into(),
            FailureKind::CompileError { detail } => format!("compile_error:{detail}"),
            FailureKind::FrontendPanic { .. } => "frontend_panic".into(),
            FailureKind::VerifyReject { stage, config, .. } => {
                format!("verify_reject:{stage}:{config}")
            }
            FailureKind::PassPanic { stage, config, .. } => {
                format!("pass_panic:{stage}:{config}")
            }
            FailureKind::VmPanic { config, .. } => format!("vm_panic:{config}"),
            FailureKind::StatusDivergence { config, .. } => {
                format!("status_divergence:{config}")
            }
            FailureKind::OutputDivergence { config, .. } => {
                format!("output_divergence:{config}")
            }
            FailureKind::BackendDivergence { config, .. } => {
                format!("backend_divergence:{config}")
            }
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::RoundTrip { detail } => write!(f, "printer round-trip: {detail}"),
            FailureKind::CompileError { detail } => write!(f, "compile error: {detail}"),
            FailureKind::FrontendPanic { detail } => write!(f, "frontend panic: {detail}"),
            FailureKind::VerifyReject { stage, config, detail } => {
                write!(f, "verifier reject after {stage} ({config}): {detail}")
            }
            FailureKind::PassPanic { stage, config, detail } => {
                write!(f, "panic in {stage} ({config}): {detail}")
            }
            FailureKind::VmPanic { config, detail } => write!(f, "VM panic ({config}): {detail}"),
            FailureKind::StatusDivergence { config, base, got } => {
                write!(f, "status divergence ({config}): baseline {base}, instrumented {got}")
            }
            FailureKind::OutputDivergence { config, detail } => {
                write!(f, "output divergence ({config}): {detail}")
            }
            FailureKind::BackendDivergence { config, detail } => {
                write!(f, "backend divergence ({config}): {detail}")
            }
        }
    }
}

/// Short lowercase label for a mechanism, used in config labels and class
/// keys (`Mechanism::name` returns the paper-style display name).
fn mech_label(m: Mechanism) -> &'static str {
    match m {
        Mechanism::Stwc => "stwc",
        Mechanism::Stc => "stc",
        Mechanism::Stl => "stl",
        Mechanism::Parts => "parts",
    }
}

pub(crate) fn panic_msg(p: Box<dyn Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

thread_local! {
    /// Whether [`run_image`] cross-checks the compiled engine against the
    /// interpreter (the `exec=compiled` oracle column). On by default;
    /// `rsti fuzz --backend interp` opts out for an interpreter-only
    /// campaign. Thread-local because parallel in-process campaigns (the
    /// test harness) must not see each other's choice.
    static EXEC_ORACLE: std::cell::Cell<bool> = const { std::cell::Cell::new(true) };

    /// Whether every VM run in the oracle matrix carries the attribution
    /// profiler (`rsti fuzz --attr`). Off by default — the campaign then
    /// exercises the production configuration. On, it pins the profiler's
    /// inertness guarantee across the whole generated-program space: the
    /// differential verdicts must be unchanged, and (with the exec oracle)
    /// the interpreter and compiled engines must produce identical
    /// profiles, since [`rsti_vm::ExecResult`] equality covers `attr`.
    static ATTR_PROFILE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };

    /// Whether every VM run in the oracle matrix arms the pointer-lifecycle
    /// flight recorder (`rsti fuzz --record`). Off by default. On, any run
    /// that traps on an RSTI detection synthesizes an [`rsti_vm::Incident`]
    /// in both engines, and the exec oracle's `ExecResult` equality then
    /// covers the full incident — failing check site, lineage, event
    /// window, model-cycle timestamps — bit for bit.
    static RECORD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Enables or disables the compiled-engine oracle column for campaigns on
/// the current thread.
pub fn set_exec_oracle(on: bool) {
    EXEC_ORACLE.with(|c| c.set(on));
}

/// Enables or disables the attribution profiler on every oracle VM run on
/// the current thread (the `--attr` fuzz knob; see [`ATTR_PROFILE`]).
pub fn set_attr_profile(on: bool) {
    ATTR_PROFILE.with(|c| c.set(on));
}

/// Enables or disables the flight recorder on every oracle VM run on the
/// current thread (the `--record` fuzz knob; see [`RECORD`]).
pub fn set_record(on: bool) {
    RECORD.with(|c| c.set(on));
}

/// Runs one image under both engines, diffs the complete [`ExecResult`]s
/// (the `exec=compiled` oracle column), and returns the interpreter's view.
fn run_image(img: &Image, config: &str) -> Result<(Status, Vec<String>), FailureKind> {
    // With the `--attr` knob on, every run carries the profiler (a small
    // sampling period so short generated programs still sample); the
    // verdicts below must be exactly what the unprofiled run produces.
    let attr_img;
    let img = if ATTR_PROFILE.with(|c| c.get()) {
        attr_img = img.clone().with_attr_sampling(256);
        &attr_img
    } else {
        img
    };
    // `--record`: the flight recorder rides every run; incident equality
    // between the engines comes with the `ExecResult` diff below.
    let rec_img;
    let img = if RECORD.with(|c| c.get()) {
        rec_img = img.clone().with_record();
        &rec_img
    } else {
        img
    };
    let r = catch_unwind(AssertUnwindSafe(|| {
        let mut vm = Vm::new(img);
        vm.set_fuel(FUEL);
        vm.run()
    }))
    .map_err(|p| FailureKind::VmPanic { config: config.into(), detail: panic_msg(p) })?;
    if !EXEC_ORACLE.with(|c| c.get()) {
        return Ok((r.status, r.output));
    }
    let cimg = img.clone().with_exec(ExecBackend::Compiled);
    let c = catch_unwind(AssertUnwindSafe(|| {
        let mut vm = Vm::new(&cimg);
        vm.set_fuel(FUEL);
        vm.run()
    }))
    .map_err(|p| FailureKind::VmPanic {
        config: format!("{config}@compiled"),
        detail: panic_msg(p),
    })?;
    if c != r {
        return Err(FailureKind::BackendDivergence {
            config: config.into(),
            detail: backend_diff(&r, &c),
        });
    }
    Ok((r.status, r.output))
}

/// Names the first `ExecResult` field on which the engines disagree.
fn backend_diff(i: &ExecResult, c: &ExecResult) -> String {
    if i.status != c.status {
        return format!("status: interp {:?} vs compiled {:?}", i.status, c.status);
    }
    if i.output != c.output {
        return format!("output: {} vs {} lines", i.output.len(), c.output.len());
    }
    if i.insts != c.insts {
        return format!("insts: interp {} vs compiled {}", i.insts, c.insts);
    }
    if i.cycles != c.cycles {
        return format!("cycles: interp {} vs compiled {}", i.cycles, c.cycles);
    }
    if i.audit != c.audit {
        return format!("audit: {} vs {} records", i.audit.len(), c.audit.len());
    }
    if i.attr != c.attr {
        return "attr: attribution profiles diverge".to_string();
    }
    if i.incident != c.incident {
        return "incident: flight-recorder incidents diverge".to_string();
    }
    format!("field-level mismatch: interp {i:?} vs compiled {c:?}")
}

fn check_verified(m: &Module, stage: &str, config: &str) -> Result<(), FailureKind> {
    verify_module(m).map_err(|errs| FailureKind::VerifyReject {
        stage: stage.into(),
        config: config.into(),
        detail: errs.first().map(|e| e.to_string()).unwrap_or_default(),
    })
}

fn compare(
    config: &str,
    base: &(Status, Vec<String>),
    got: &(Status, Vec<String>),
) -> Result<(), FailureKind> {
    let fuel_bound = |s: &Status| matches!(s, Status::Trapped(Trap::FuelExhausted));
    if fuel_bound(&base.0) || fuel_bound(&got.0) {
        return Ok(());
    }
    if base.0 != got.0 {
        return Err(FailureKind::StatusDivergence {
            config: config.into(),
            base: format!("{:?}", base.0),
            got: format!("{:?}", got.0),
        });
    }
    if base.1 != got.1 {
        let detail = base
            .1
            .iter()
            .zip(got.1.iter())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {i}: `{a}` vs `{b}`"))
            .unwrap_or_else(|| format!("{} vs {} output lines", base.1.len(), got.1.len()));
        return Err(FailureKind::OutputDivergence { config: config.into(), detail });
    }
    Ok(())
}

/// Runs all three oracles on an AST, including the printer round-trip check
/// against `items` itself. This is the entry point for generated programs
/// and for reducer candidates.
pub fn check_items(items: &[Item]) -> Result<(), FailureKind> {
    let src = catch_unwind(AssertUnwindSafe(|| print_items(items)))
        .map_err(|p| FailureKind::FrontendPanic { detail: format!("printer: {}", panic_msg(p)) })?;
    let reparsed = catch_unwind(AssertUnwindSafe(|| parse(&src)))
        .map_err(|p| FailureKind::FrontendPanic { detail: format!("parser: {}", panic_msg(p)) })?
        .map_err(|e| FailureKind::RoundTrip { detail: format!("reparse failed: {}", e.msg) })?;
    if !ast_eq_items(items, &reparsed) {
        return Err(FailureKind::RoundTrip { detail: "parse(print(ast)) != ast".into() });
    }
    check_compiled(&src)
}

/// Runs the oracles on source text (corpus replay). The round-trip oracle
/// checks `parse(print(parse(src))) == parse(src)`; the differential and
/// verifier oracles are identical to [`check_items`].
pub fn check_source(src: &str) -> Result<(), FailureKind> {
    let items = catch_unwind(AssertUnwindSafe(|| parse(src)))
        .map_err(|p| FailureKind::FrontendPanic { detail: format!("parser: {}", panic_msg(p)) })?
        .map_err(|e| FailureKind::CompileError { detail: e.msg })?;
    check_items(&items)
}

/// The differential and verifier oracles on already-round-tripped source.
fn check_compiled(src: &str) -> Result<(), FailureKind> {
    let m = catch_unwind(AssertUnwindSafe(|| compile(src, "fuzz")))
        .map_err(|p| FailureKind::FrontendPanic { detail: panic_msg(p) })?
        .map_err(|e| FailureKind::CompileError { detail: e.msg })?;
    check_verified(&m, "lower", "baseline")?;

    let img = Image::baseline(&m);
    let base = run_image(&img, "baseline")?;

    // Short opt-level suffixes: `""` (unoptimized), `"+opt"` (the
    // block-local pipeline), `"+cfg"` (dominator elision, hoisting,
    // precomputed modifiers), `"+ipo"` (interprocedural summaries,
    // resign folding, inlining).
    fn level_suffix(level: OptLevel) -> &'static str {
        match level {
            OptLevel::None => "",
            OptLevel::BlockLocal => "+opt",
            OptLevel::Cfg => "+cfg",
            OptLevel::Ipo => "+ipo",
        }
    }

    // Optimizer correctness on the uninstrumented module (mem2reg,
    // hoisting etc. must not change observable behaviour even before any
    // PAC ops exist).
    for level in [OptLevel::BlockLocal, OptLevel::Cfg] {
        let config = format!("baseline{}", level_suffix(level));
        let mut om = m.clone();
        catch_unwind(AssertUnwindSafe(|| optimize_module(&mut om, level))).map_err(|p| {
            FailureKind::PassPanic {
                stage: "optimize".into(),
                config: config.clone(),
                detail: panic_msg(p),
            }
        })?;
        check_verified(&om, "optimize", &config)?;
        let got = run_image(&Image::baseline(&om), &config)?;
        compare(&config, &base, &got)?;
    }

    for mech in Mechanism::ALL {
        for level in OptLevel::ALL {
            let config = format!("{}{}", mech_label(mech), level_suffix(level));
            let mut p = catch_unwind(AssertUnwindSafe(|| instrument(&m, mech))).map_err(|p| {
                FailureKind::PassPanic {
                    stage: "instrument".into(),
                    config: config.clone(),
                    detail: panic_msg(p),
                }
            })?;
            check_verified(&p.module, "instrument", &config)?;
            if level != OptLevel::None {
                catch_unwind(AssertUnwindSafe(|| optimize_module(&mut p.module, level)))
                    .map_err(|e| FailureKind::PassPanic {
                        stage: "optimize".into(),
                        config: config.clone(),
                        detail: panic_msg(e),
                    })?;
                check_verified(&p.module, "optimize", &config)?;
            }
            let got = run_image(&Image::from_instrumented(&p), &config)?;
            compare(&config, &base, &got)?;
        }
    }
    Ok(())
}
