//! # rsti-fuzz — differential fuzzing and delta-debugging triage
//!
//! The reproduction's central claim is *differential*: for any well-defined
//! MiniC program, the instrumented pipeline (any mechanism, optimized or
//! not) behaves exactly like the uninstrumented baseline. This crate turns
//! that claim into a fuzz campaign:
//!
//! * [`rsti_workloads::generate_items`] produces seeded, grammar-directed
//!   ASTs that exercise the constructs RSTI cares about — function-pointer
//!   tables, nested structs, double pointers, casts and type punning,
//!   address-escaping locals, heap churn;
//! * [`oracle`] pushes each program through three checks per pipeline
//!   configuration: differential output vs. the baseline, IR verification at
//!   every pass boundary, and no-panic-anywhere;
//! * [`minimize`](minimize::minimize) shrinks a failing AST while preserving
//!   its failure class, leaning on the printer's round-trip guarantee
//!   (`parse(print(ast)) == ast`) so every candidate is a valid program;
//! * [`corpus`] persists minimal repros as permanent regression tests under
//!   `tests/corpus/`.
//!
//! The campaign is fully deterministic: seed `n` always produces the same
//! program, the same verdict, and the same minimized repro.

#![warn(missing_docs)]

pub mod corpus;
pub mod minimize;
pub mod oracle;

pub use minimize::MinimizeReport;
pub use oracle::{set_attr_profile, set_exec_oracle, set_record, FailureKind};

use rsti_frontend::print_items;
use rsti_telemetry::{CounterId, Phase};
use rsti_workloads::AstGenConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// First seed (inclusive).
    pub start: u64,
    /// Number of seeds to run.
    pub seeds: u64,
    /// Generator shape parameters.
    pub gen: AstGenConfig,
    /// Run the delta-debugging reducer on each failure.
    pub minimize: bool,
    /// Oracle-run budget per minimization.
    pub budget: u32,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            start: 0,
            seeds: 100,
            gen: AstGenConfig::default(),
            minimize: false,
            budget: 2000,
        }
    }
}

/// One failing seed, with enough context to file a bug: the original
/// program, the failure, and (when minimization ran) the shrunken repro.
#[derive(Debug, Clone)]
pub struct SeedFailure {
    /// The seed that produced the program.
    pub seed: u64,
    /// What went wrong.
    pub kind: FailureKind,
    /// The generated program, printed.
    pub source: String,
    /// The minimized program, when `--minimize` was on.
    pub minimized: Option<String>,
    /// Oracle runs the reducer spent.
    pub attempts: u32,
}

/// Result of [`run_campaign`].
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Seeds executed.
    pub seeds_run: u64,
    /// Oracle violations, in seed order.
    pub failures: Vec<SeedFailure>,
}

impl CampaignReport {
    /// No oracle was violated.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `f` with the default panic hook replaced by a no-op, restoring it
/// afterwards. The oracles run every stage under `catch_unwind` and turn
/// panics into classified failures; without this, each caught panic would
/// still splat a backtrace banner onto stderr mid-campaign.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = catch_unwind(AssertUnwindSafe(f));
    std::panic::set_hook(prev);
    match r {
        Ok(v) => v,
        Err(p) => std::panic::resume_unwind(p),
    }
}

/// Runs a deterministic fuzz campaign over `cfg.start .. cfg.start + cfg.seeds`.
pub fn run_campaign(cfg: &FuzzConfig) -> CampaignReport {
    let tel = rsti_telemetry::global();
    with_quiet_panics(|| {
        let mut failures = Vec::new();
        for seed in cfg.start..cfg.start.saturating_add(cfg.seeds) {
            tel.add(CounterId::FuzzSeedsRun, 1);
            let items = {
                let _span = tel.span(Phase::FuzzGen);
                match catch_unwind(AssertUnwindSafe(|| {
                    rsti_workloads::generate_items(seed, cfg.gen)
                })) {
                    Ok(items) => items,
                    Err(p) => {
                        tel.add(CounterId::FuzzFailures, 1);
                        failures.push(SeedFailure {
                            seed,
                            kind: FailureKind::FrontendPanic {
                                detail: format!("generator: {}", oracle::panic_msg(p)),
                            },
                            source: String::new(),
                            minimized: None,
                            attempts: 0,
                        });
                        continue;
                    }
                }
            };
            if let Err(kind) = oracle::check_items(&items) {
                tel.add(CounterId::FuzzFailures, 1);
                let source = print_items(&items);
                let (minimized, attempts) = if cfg.minimize {
                    let _span = tel.span(Phase::FuzzMinimize);
                    let rep = minimize::minimize(&items, &kind.class_key(), cfg.budget);
                    (Some(print_items(&rep.items)), rep.attempts)
                } else {
                    (None, 0)
                };
                failures.push(SeedFailure { seed, kind, source, minimized, attempts });
            }
        }
        CampaignReport { seeds_run: cfg.seeds, failures }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize::{count_stmts, minimize};
    use crate::oracle::check_items;

    fn small() -> AstGenConfig {
        AstGenConfig {
            structs: 2,
            hooks: 2,
            funcs: 3,
            stmts_per_func: 4,
            max_expr_depth: 2,
            objects: 3,
            iters: 3,
        }
    }

    #[test]
    fn campaign_is_clean_on_the_current_tree() {
        let report = run_campaign(&FuzzConfig {
            start: 0,
            seeds: 6,
            gen: small(),
            minimize: true,
            budget: 200,
        });
        assert_eq!(report.seeds_run, 6);
        assert!(
            report.clean(),
            "oracle violations: {:?}",
            report.failures.iter().map(|f| (f.seed, f.kind.clone())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = FuzzConfig { start: 7, seeds: 2, gen: small(), minimize: false, budget: 0 };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.failures.len(), b.failures.len());
        assert_eq!(a.seeds_run, b.seeds_run);
    }

    /// A deliberate field-class type confusion: the store signs through
    /// `struct a.q`, the load authenticates through `struct b.r`. The
    /// baseline is oblivious (same bytes), so STWC's trap is a *legitimate*
    /// status divergence — which makes it a perfect fixture for the reducer.
    const CONFUSED: &str = r#"
struct a { long* q; };
struct b { long* r; };
long x;
int main() {
    struct a* pa = (struct a*) malloc(sizeof(struct a));
    long side = 0;
    side = side + 1;
    if (side > 0) {
        pa->q = &x;
    }
    struct b* pb = (struct b*) ((void*) pa);
    long* stolen = pb->r;
    *stolen = side;
    print_int(x);
    return 0;
}
"#;

    #[test]
    fn reducer_shrinks_a_divergence_and_preserves_its_class() {
        with_quiet_panics(|| {
            let items = rsti_frontend::parse(CONFUSED).expect("fixture parses");
            let kind = check_items(&items).expect_err("fixture must diverge");
            let key = kind.class_key();
            assert!(
                key.starts_with("status_divergence:"),
                "expected a status divergence, got {key}"
            );

            let rep = minimize(&items, &key, 400);
            assert!(rep.attempts > 0);
            assert!(
                rep.stmts_after < rep.stmts_before,
                "reducer made no progress ({} stmts)",
                rep.stmts_before
            );
            // The reducer invariant: the minimized program still fails with
            // the exact same class.
            let kind2 = check_items(&rep.items).expect_err("minimized repro must still fail");
            assert_eq!(kind2.class_key(), key);
        });
    }

    #[test]
    fn class_keys_are_stable() {
        let cases = [
            (
                FailureKind::RoundTrip { detail: "x".into() },
                "roundtrip",
            ),
            (
                FailureKind::CompileError { detail: "unknown variable `q`".into() },
                "compile_error:unknown variable `q`",
            ),
            (FailureKind::FrontendPanic { detail: "boom".into() }, "frontend_panic"),
            (
                FailureKind::VerifyReject {
                    stage: "optimize".into(),
                    config: "stl+opt".into(),
                    detail: "x".into(),
                },
                "verify_reject:optimize:stl+opt",
            ),
            (
                FailureKind::PassPanic {
                    stage: "instrument".into(),
                    config: "parts".into(),
                    detail: "x".into(),
                },
                "pass_panic:instrument:parts",
            ),
            (
                FailureKind::VmPanic { config: "stwc".into(), detail: "x".into() },
                "vm_panic:stwc",
            ),
            (
                FailureKind::StatusDivergence {
                    config: "stc".into(),
                    base: "a".into(),
                    got: "b".into(),
                },
                "status_divergence:stc",
            ),
            (
                FailureKind::OutputDivergence { config: "stc+opt".into(), detail: "x".into() },
                "output_divergence:stc+opt",
            ),
        ];
        for (kind, want) in cases {
            assert_eq!(kind.class_key(), want);
        }
    }

    #[test]
    fn corpus_write_and_replay_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rsti-fuzz-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let src = "int main() {\n    print_int(41 + 1);\n    return 0;\n}\n";
        let path = corpus::write_repro(&dir, "smoke", 3, "status_divergence:stwc", src).unwrap();
        assert!(path.ends_with("smoke.mc"));
        let verdicts = corpus::replay_dir(&dir).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].1, Ok(()), "replayed repro must pass post-fix");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replaying_an_empty_corpus_is_an_error_not_a_pass() {
        let dir = std::env::temp_dir().join(format!("rsti-fuzz-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(corpus::replay_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn committed_corpus_replays_clean() {
        with_quiet_panics(|| {
            let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("tests/corpus");
            let verdicts = corpus::replay_dir(&dir).expect("committed corpus must exist");
            for (path, verdict) in &verdicts {
                assert_eq!(
                    *verdict,
                    Ok(()),
                    "corpus regression {} failed",
                    path.display()
                );
            }
        });
    }

    #[test]
    fn minimizer_edit_walk_covers_nested_statements() {
        let src = r#"
int main() {
    long a = 1;
    if (a > 0) {
        long b = 2;
        while (b > 0) {
            b = b - 1;
        }
    } else {
        a = 0;
    }
    {
        a = a + 1;
    }
    return 0;
}
"#;
        let items = rsti_frontend::parse(src).unwrap();
        // decl, if, decl, while, assign, assign(else), block, assign, return
        assert_eq!(count_stmts(&items), 9);
    }
}
