//! # rsti-vm — the runtime: an interpreter with the PA data path wired in
//!
//! Executes (instrumented) `rsti-ir` modules under the software PA model,
//! realizing the paper's threat model so that attacks and defenses can be
//! evaluated end-to-end:
//!
//! * [`mem`] — segmented process memory, heap allocator, and the boundary
//!   between program-level permissions and the attacker's corruption
//!   primitive;
//! * [`vm`] — the interpreter, the PAC/`pp_*` instruction semantics, the
//!   external-library model, the attacker API, and trap reporting;
//! * [`cycles`] — the deterministic cost model behind the Figure 9/10
//!   overhead numbers (PA op ≈ 7 XOR, per the paper's own emulation).
//!
//! # Example: run a protected program
//!
//! ```
//! use rsti_vm::{Image, Vm, Status};
//!
//! let m = rsti_frontend::compile(r#"
//!     int main() {
//!         int* p = (int*) malloc(sizeof(int));
//!         *p = 41;
//!         *p = *p + 1;
//!         print_int(*p);
//!         return *p;
//!     }
//! "#, "demo").unwrap();
//! let prog = rsti_core::instrument(&m, rsti_core::Mechanism::Stwc);
//! let img = Image::from_instrumented(&prog);
//! let mut vm = Vm::new(&img);
//! let r = vm.run();
//! assert_eq!(r.status, Status::Exited(42));
//! assert_eq!(r.output, vec!["42"]);
//! ```

#![warn(missing_docs)]

pub mod cycles;
pub mod mem;
pub mod vm;

pub use cycles::CostModel;
pub use mem::{layout, Allocator, MemFault, Memory};
pub use vm::{
    func_address, resolve_code_addr, AttrProfile, Backend, ExecBackend, ExecResult, ExtEvent,
    FuncAttr, Image, RtVal, RunStop, SiteAttr, Status, Trap, Vm, CRITICAL_EXTERNALS,
    DEFAULT_ATTR_SAMPLE_EVERY, DEFAULT_RECORD_CAP, OPCLASS_ORDER, SITE_ORDER,
};
// The audit-record type carried in [`ExecResult::audit`] and the
// flight-recorder incident carried in [`ExecResult::incident`].
pub use rsti_telemetry::{AuditRecord, Incident, IncidentEvent, SignLineage};

#[cfg(test)]
mod tests {
    use super::*;
    use rsti_core::Mechanism;
    use rsti_frontend::compile;

    fn run_baseline(src: &str) -> ExecResult {
        let m = compile(src, "t").unwrap();
        let img = Image::baseline(&m);
        Vm::new(&img).run()
    }

    fn run_mech(src: &str, mech: Mechanism) -> ExecResult {
        let m = compile(src, "t").unwrap();
        let p = rsti_core::instrument(&m, mech);
        let img = Image::from_instrumented(&p);
        Vm::new(&img).run()
    }

    fn run_all_mechs(src: &str) -> Vec<ExecResult> {
        Mechanism::ALL.iter().map(|&m| run_mech(src, m)).collect()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let r = run_baseline(
            r#"
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() {
                print_int(fib(15));
                return fib(10);
            }
        "#,
        );
        assert_eq!(r.status, Status::Exited(55));
        assert_eq!(r.output, vec!["610"]);
    }

    #[test]
    fn loops_arrays_pointers() {
        let r = run_baseline(
            r#"
            int main() {
                int buf[10];
                for (int i = 0; i < 10; i = i + 1) { buf[i] = i * i; }
                int* p = &buf[0];
                int acc = 0;
                for (int i = 0; i < 10; i = i + 1) { acc = acc + *(p + i); }
                return acc;
            }
        "#,
        );
        assert_eq!(r.status, Status::Exited(285));
    }

    #[test]
    fn heap_linked_list_under_every_mechanism() {
        let src = r#"
            struct node { int key; struct node* next; };
            int main() {
                struct node* head = null;
                for (int i = 0; i < 20; i = i + 1) {
                    struct node* n = (struct node*) malloc(sizeof(struct node));
                    n->key = i;
                    n->next = head;
                    head = n;
                }
                int acc = 0;
                struct node* cur = head;
                while (cur != null) {
                    acc = acc + cur->key;
                    cur = cur->next;
                }
                return acc;
            }
        "#;
        let base = run_baseline(src);
        assert_eq!(base.status, Status::Exited(190));
        for (mech, r) in Mechanism::ALL.iter().zip(run_all_mechs(src)) {
            assert_eq!(r.status, Status::Exited(190), "{mech}: {:?}", r.status);
            assert!(r.pac_signs > 0, "{mech} signed pointers");
            assert!(r.pac_auths > 0, "{mech} authenticated pointers");
            assert!(r.cycles > base.cycles, "{mech} costs more than baseline");
        }
    }

    #[test]
    fn function_pointers_work_instrumented() {
        let src = r#"
            int add(int a, int b) { return a + b; }
            int mul(int a, int b) { return a * b; }
            int main() {
                int (*op)(int a, int b) = add;
                int r = op(3, 4);
                op = mul;
                return r + op(3, 4);
            }
        "#;
        for r in run_all_mechs(src) {
            assert_eq!(r.status, Status::Exited(19));
        }
    }

    #[test]
    fn composite_function_pointer_fig6() {
        let src = r#"
            void hello_func() { print_str("Hello!"); }
            struct node { int key; void (*fp)(); struct node* next; };
            int main() {
                struct node* ptr = (struct node*) malloc(sizeof(struct node));
                ptr->fp = hello_func;
                ptr->fp();
                return 0;
            }
        "#;
        for (mech, r) in Mechanism::ALL.iter().zip(run_all_mechs(src)) {
            assert_eq!(r.status, Status::Exited(0), "{mech}: {:?}", r.status);
            assert_eq!(r.output, vec!["Hello!"], "{mech}");
        }
    }

    #[test]
    fn double_pointers_all_mechanisms() {
        let src = r#"
            void bump(int** pp) { **pp = **pp + 1; }
            int main() {
                int x = 5;
                int* p = &x;
                bump(&p);
                bump(&p);
                return x;
            }
        "#;
        for (mech, r) in Mechanism::ALL.iter().zip(run_all_mechs(src)) {
            assert_eq!(r.status, Status::Exited(7), "{mech}: {:?}", r.status);
        }
    }

    #[test]
    fn fig7_lost_type_double_pointer_roundtrips() {
        let src = r#"
            struct node { int key; struct node* next; };
            int probe(void** pp) {
                void* inner = *pp;
                if (inner == null) { return 1; }
                return 0;
            }
            int main() {
                struct node* p = (struct node*) malloc(sizeof(struct node));
                p->key = 9;
                int r = probe((void**) &p);
                return p->key + r;
            }
        "#;
        for mech in [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl] {
            let r = run_mech(src, mech);
            assert_eq!(r.status, Status::Exited(9), "{mech}: {:?}", r.status);
        }
    }

    #[test]
    fn short_circuit_protects_null_deref() {
        let r = run_baseline(
            r#"
            int main() {
                int* p = null;
                if (p != null && *p == 3) { return 1; }
                return 0;
            }
        "#,
        );
        assert_eq!(r.status, Status::Exited(0));
    }

    #[test]
    fn null_deref_faults() {
        let r = run_baseline("int main() { int* p = null; return *p; }");
        assert!(matches!(r.status, Status::Trapped(Trap::Mem { .. })), "{:?}", r.status);
    }

    #[test]
    fn division_by_zero_traps() {
        let r = run_baseline("int main() { int a = 4; int b = 0; return a / b; }");
        assert!(matches!(r.status, Status::Trapped(Trap::DivByZero { .. })));
    }

    #[test]
    fn externals_record_events_and_strip() {
        let src = r#"
            extern void* dlopen(char* name, int flags);
            int main() {
                void* h = dlopen("libm.so", 2);
                if (h == null) { return 7; }
                return 1;
            }
        "#;
        let r = run_mech(src, Mechanism::Stwc);
        assert_eq!(r.status, Status::Exited(7), "{:?}", r.status);
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].name, "dlopen");
        assert!(r.events[0].critical);
    }

    #[test]
    fn globals_and_static_code_pointers() {
        let src = r#"
            int counter = 10;
            void tick() { counter = counter + 2; }
            void (*g_hook)() = tick;
            int main() {
                g_hook();
                g_hook();
                return counter;
            }
        "#;
        for (mech, r) in Mechanism::ALL.iter().zip(run_all_mechs(src)) {
            assert_eq!(r.status, Status::Exited(14), "{mech}: {:?}", r.status);
        }
    }

    #[test]
    fn attack_unsigned_overwrite_is_detected_by_rsti_but_not_baseline() {
        // The canonical experiment: corrupt a signed function pointer in
        // memory with a raw code address. Baseline: hijack succeeds.
        // RSTI: authentication failure.
        let src = r#"
            void benign() { print_str("benign"); }
            void evil() { print_str("EVIL"); }
            struct ctx { void (*cb)(); };
            struct ctx* g_ctx;
            void dispatch() { g_ctx->cb(); }
            int main() {
                g_ctx = (struct ctx*) malloc(sizeof(struct ctx));
                g_ctx->cb = benign;
                dispatch();
                return 0;
            }
        "#;
        let m = compile(src, "t").unwrap();

        // Baseline run: overwrite cb with &evil after main sets it up.
        let img = Image::baseline(&m);
        let mut vm = Vm::new(&img);
        assert_eq!(vm.run_to_function("dispatch"), RunStop::Entered);
        let obj = vm.heap_live()[0].0;
        let evil = vm.func_addr("evil").unwrap();
        vm.attacker_write_u64(obj, evil).unwrap();
        let r = vm.finish();
        assert_eq!(r.status, Status::Exited(0));
        assert_eq!(r.output, vec!["EVIL"], "unprotected hijack must succeed");

        // Instrumented: same corruption, detection expected.
        for mech in [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl] {
            let p = rsti_core::instrument(&m, mech);
            let img = Image::from_instrumented(&p);
            let mut vm = Vm::new(&img);
            assert_eq!(vm.run_to_function("dispatch"), RunStop::Entered);
            let obj = vm.heap_live()[0].0;
            let evil = vm.func_addr("evil").unwrap();
            vm.attacker_write_u64(obj, evil).unwrap();
            let r = vm.finish();
            match &r.status {
                Status::Trapped(t) if t.is_detection() => {}
                other => panic!("{mech}: expected detection, got {other:?}"),
            }
            assert!(r.output.is_empty(), "{mech}: payload must not run");
        }
    }

    #[test]
    fn cycle_overhead_ordering_stc_stwc_stl() {
        // A pointer-heavy workload: overhead(STC) <= overhead(STWC) <=
        // overhead(STL), the paper's Figure 9 ordering.
        let src = r#"
            struct node { int key; struct node* next; };
            struct node* reverse(struct node* head) {
                struct node* prev = null;
                while (head != null) {
                    struct node* next = head->next;
                    head->next = prev;
                    prev = head;
                    head = next;
                }
                return prev;
            }
            int main() {
                struct node* head = null;
                for (int i = 0; i < 50; i = i + 1) {
                    struct node* n = (struct node*) malloc(sizeof(struct node));
                    n->key = i;
                    n->next = head;
                    head = n;
                }
                for (int r = 0; r < 10; r = r + 1) { head = reverse(head); }
                return head->key;
            }
        "#;
        let base = run_baseline(src).cycles as f64;
        let stc = run_mech(src, Mechanism::Stc).cycles as f64 / base;
        let stwc = run_mech(src, Mechanism::Stwc).cycles as f64 / base;
        let stl = run_mech(src, Mechanism::Stl).cycles as f64 / base;
        assert!(stc >= 1.0);
        assert!(stc <= stwc + 1e-9, "stc={stc} stwc={stwc}");
        assert!(stwc <= stl + 1e-9, "stwc={stwc} stl={stl}");
    }

    #[test]
    fn dynamic_site_profile_matches_mechanism() {
        let src = r#"
            struct s { long v; };
            void eat(void* raw) {
                struct s* p = (struct s*) raw;
                p->v = p->v + 1;
            }
            int main() {
                struct s* a = (struct s*) malloc(sizeof(struct s));
                a->v = 0;
                for (int i = 0; i < 5; i = i + 1) { eat((void*) a); }
                return (int) a->v;
            }
        "#;
        // STC: no cast re-signing executes; STWC: some does; both agree on
        // store/load counts.
        let stc = run_mech(src, Mechanism::Stc);
        let stwc = run_mech(src, Mechanism::Stwc);
        assert_eq!(stc.status, Status::Exited(5));
        assert_eq!(stwc.status, Status::Exited(5));
        let idx = |site| SITE_ORDER.iter().position(|&s| s == site).unwrap();
        use rsti_ir::PacSite;
        assert_eq!(stc.site_counts[idx(PacSite::CastResign)], 0, "{:?}", stc.site_counts);
        assert!(stwc.site_counts[idx(PacSite::CastResign)] > 0, "{:?}", stwc.site_counts);
        assert_eq!(
            stc.site_counts[idx(PacSite::OnStore)],
            stwc.site_counts[idx(PacSite::OnStore)]
        );
        assert!(stwc.site_counts[idx(PacSite::OnLoad)] > 0);
    }

    #[test]
    fn mac_table_backend_runs_programs_identically() {
        // §7: the STI policy is enforcement-agnostic — a CCFI-style MAC
        // table enforces the same modifiers without touching pointer bits.
        let src = r#"
            struct node { int key; struct node* next; };
            void hello() { print_str("cb"); }
            void (*g_cb)() = hello;
            int main() {
                struct node* head = null;
                for (int i = 0; i < 8; i = i + 1) {
                    struct node* n = (struct node*) malloc(sizeof(struct node));
                    n->key = i;
                    n->next = head;
                    head = n;
                }
                g_cb();
                int acc = 0;
                while (head != null) { acc = acc + head->key; head = head->next; }
                return acc;
            }
        "#;
        let m = compile(src, "t").unwrap();
        for mech in Mechanism::ALL {
            let p = rsti_core::instrument(&m, mech);
            let img = Image::from_instrumented(&p).with_backend(Backend::MacTable);
            let r = Vm::new(&img).run();
            assert_eq!(r.status, Status::Exited(28), "{mech}: {:?}", r.status);
            assert_eq!(r.output, vec!["cb"], "{mech}");
        }
    }

    #[test]
    fn mac_table_backend_detects_corruption() {
        let src = r#"
            void benign() { }
            void evil() { print_str("EVIL"); }
            struct ctx { long pad; void (*cb)(); };
            struct ctx* g_ctx;
            void dispatch() { g_ctx->cb(); }
            int main() {
                g_ctx = (struct ctx*) malloc(sizeof(struct ctx));
                g_ctx->cb = benign;
                dispatch();
                return 0;
            }
        "#;
        let m = compile(src, "t").unwrap();
        let p = rsti_core::instrument(&m, Mechanism::Stwc);
        let img = Image::from_instrumented(&p).with_backend(Backend::MacTable);
        let mut vm = Vm::new(&img);
        assert_eq!(vm.run_to_function("dispatch"), RunStop::Entered);
        let obj = vm.heap_live()[0].0;
        let evil = vm.func_addr("evil").unwrap();
        vm.attacker_write_u64(obj + 8, evil).unwrap();
        let r = vm.finish();
        assert!(
            matches!(&r.status, Status::Trapped(t) if t.is_detection()),
            "{:?}",
            r.status
        );
        // Under MacTable, pointers in memory stay canonical (no PAC bits) —
        // the protection is entirely in the shadow table.
        assert!(r.output.is_empty());
    }

    #[test]
    fn mac_table_is_slot_bound_even_for_same_class_substitution() {
        // The shadow table is indexed by slot, so even two same-RSTI-type
        // pointers cannot be substituted — stronger than PAC-in-pointer
        // STWC, akin to STL (see DESIGN.md on the CCFI modelling choice).
        let src = r#"
            struct item { long v; };
            struct item* a;
            struct item* b;
            long consume() { return a->v + b->v; }
            int main() {
                a = (struct item*) malloc(sizeof(struct item));
                b = (struct item*) malloc(sizeof(struct item));
                a->v = 1;
                b->v = 2;
                return (int) consume();
            }
        "#;
        let m = compile(src, "t").unwrap();
        let p = rsti_core::instrument(&m, Mechanism::Stwc);
        let img = Image::from_instrumented(&p).with_backend(Backend::MacTable);
        let mut vm = Vm::new(&img);
        assert_eq!(vm.run_to_function("consume"), RunStop::Entered);
        let src_a = vm.global_addr("b").unwrap();
        let dst_a = vm.global_addr("a").unwrap();
        let bytes = vm.attacker_read(src_a, 8).unwrap();
        vm.attacker_write(dst_a, &bytes).unwrap();
        let r = vm.finish();
        assert!(
            matches!(&r.status, Status::Trapped(t) if t.is_detection()),
            "{:?}",
            r.status
        );
    }

    #[test]
    fn adaptive_instrumentation_closes_large_class_substitution() {
        // Two same-fact pointers are substitutable under plain STWC
        // (shared RSTI-type), but adaptive hardening (threshold 1) binds
        // their slots' locations and detects the replay — the paper's §7
        // proposal, end to end.
        let src = r#"
            struct item { long v; };
            struct item* a;
            struct item* b;
            long consume() { return a->v + b->v; }
            int main() {
                a = (struct item*) malloc(sizeof(struct item));
                b = (struct item*) malloc(sizeof(struct item));
                a->v = 1;
                b->v = 2;
                return (int) consume();
            }
        "#;
        let m = compile(src, "t").unwrap();
        let substitute = |img: &Image| {
            let mut vm = Vm::new(img);
            assert_eq!(vm.run_to_function("consume"), RunStop::Entered);
            let src_a = vm.global_addr("b").unwrap();
            let dst_a = vm.global_addr("a").unwrap();
            let bytes = vm.attacker_read(src_a, 8).unwrap();
            vm.attacker_write(dst_a, &bytes).unwrap();
            vm.finish()
        };
        // Plain STWC: same class → substitution passes.
        let stwc = Image::from_instrumented(&rsti_core::instrument(&m, Mechanism::Stwc));
        let r = substitute(&stwc);
        assert_eq!(r.status, Status::Exited(4), "{:?}", r.status);
        // Adaptive: the 2-member class exceeds threshold 1 → locations
        // bound → detected.
        let adaptive = Image::from_instrumented(&rsti_core::instrument_adaptive(&m, 1));
        let r = substitute(&adaptive);
        assert!(
            matches!(&r.status, Status::Trapped(t) if t.is_detection()),
            "{:?}",
            r.status
        );
    }

    #[test]
    fn auth_elision_preserves_semantics_and_detection() {
        let src = r#"
            struct s { long a; long b; };
            struct s* g;
            long churn() {
                long acc = 0;
                for (int i = 0; i < 10; i = i + 1) {
                    acc = acc + g->a + g->b + g->a;
                }
                return acc;
            }
            int main() {
                g = (struct s*) malloc(sizeof(struct s));
                g->a = 2;
                g->b = 3;
                return (int) churn();
            }
        "#;
        let m = compile(src, "t").unwrap();
        let plain = rsti_core::instrument(&m, Mechanism::Stwc);
        let mut opt = rsti_core::instrument(&m, Mechanism::Stwc);
        let elided = rsti_core::optimize_program(&mut opt);
        assert!(elided > 0, "churn re-reads g repeatedly");

        let r_plain = Vm::new(&Image::from_instrumented(&plain)).run();
        let r_opt = Vm::new(&Image::from_instrumented(&opt)).run();
        assert_eq!(r_plain.status, Status::Exited(70));
        assert_eq!(r_opt.status, r_plain.status);
        assert!(
            r_opt.pac_auths < r_plain.pac_auths,
            "optimized: {} vs {}",
            r_opt.pac_auths,
            r_plain.pac_auths
        );
        assert!(r_opt.cycles < r_plain.cycles);

        // Detection at the re-check boundary still works: corrupt before
        // `churn` runs — its first (non-elided) auth fires.
        let img = Image::from_instrumented(&opt);
        let mut vm = Vm::new(&img);
        assert_eq!(vm.run_to_function("churn"), RunStop::Entered);
        let slot = vm.global_addr("g").unwrap();
        vm.attacker_write_u64(slot, 0x4000_0000_0040).unwrap();
        let r = vm.finish();
        assert!(
            matches!(&r.status, Status::Trapped(t) if t.is_detection()),
            "{:?}",
            r.status
        );
    }

    #[test]
    fn do_while_and_compound_ops_execute() {
        let r = run_baseline(
            r#"
            int main() {
                int acc = 0;
                int i = 0;
                do { acc += i; i++; } while (i < 5);
                acc *= 3;       // (0+1+2+3+4)*3 = 30
                acc -= 5;       // 25
                return acc;
            }
        "#,
        );
        assert_eq!(r.status, Status::Exited(25));
    }

    #[test]
    fn shadow_stack_assumption_demonstrated() {
        // §3: RSTI assumes return addresses are protected elsewhere. With
        // the shadow stack off, a classic saved-return overwrite redirects
        // control even under full RSTI-STL — with it on (the default),
        // the same corruption is inert.
        let src = r#"
            extern void system(char* cmd);
            long helper(long x) {
                long y = x * 2;
                return y;
            }
            int main() {
                long r = helper(21);
                return (int) r;
            }
        "#;
        let m = compile(src, "t").unwrap();
        let p = rsti_core::instrument(&m, Mechanism::Stl);

        // No shadow stack: hijack the return to libc system().
        let img = Image::from_instrumented(&p).without_shadow_stack();
        let mut vm = Vm::new(&img);
        assert_eq!(vm.run_to_function("helper"), RunStop::Entered);
        let slot = vm.current_ret_slot().expect("ret slot spilled");
        let system = vm.func_addr("system").unwrap();
        vm.attacker_write_u64(slot, system).unwrap();
        let r = vm.finish();
        assert!(
            r.events.iter().any(|e| e.name == "system"),
            "ROP must reach system() without a shadow stack: {:?}",
            r.status
        );

        // Shadow stack (default): the same write has no control effect.
        let img = Image::from_instrumented(&p);
        let mut vm = Vm::new(&img);
        assert_eq!(vm.run_to_function("helper"), RunStop::Entered);
        assert_eq!(vm.current_ret_slot(), None, "return address not in memory");
        let r = vm.finish();
        assert_eq!(r.status, Status::Exited(42));
        assert!(r.events.is_empty());
    }

    #[test]
    fn benign_runs_unaffected_without_shadow_stack() {
        let src = r#"
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(12); }
        "#;
        let m = compile(src, "t").unwrap();
        let img = Image::baseline(&m).without_shadow_stack();
        let r = Vm::new(&img).run();
        assert_eq!(r.status, Status::Exited(144));
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let m = compile("int main() { while (true) { } return 0; }", "t").unwrap();
        let img = Image::baseline(&m);
        let mut vm = Vm::new(&img);
        vm.set_fuel(10_000);
        let r = vm.run();
        assert_eq!(r.status, Status::Trapped(Trap::FuelExhausted));
    }

    #[test]
    fn indirect_call_to_data_traps_as_non_function() {
        // DEP: function pointers must resolve to real code addresses.
        let src = r#"
            struct box { long pad; void (*fp)(); };
            struct box* g;
            void f() { }
            void fire() { g->fp(); }
            int main() {
                g = (struct box*) malloc(sizeof(struct box));
                g->fp = f;
                fire();
                return 0;
            }
        "#;
        let m = compile(src, "t").unwrap();
        // Baseline (no PAC): plant a heap address — the call itself traps.
        let img = Image::baseline(&m);
        let mut vm = Vm::new(&img);
        assert_eq!(vm.run_to_function("fire"), RunStop::Entered);
        let obj = vm.heap_live()[0].0;
        vm.attacker_write_u64(obj + 8, obj).unwrap();
        let r = vm.finish();
        assert!(
            matches!(r.status, Status::Trapped(Trap::CallNonFunction { .. })),
            "{:?}",
            r.status
        );
    }

    #[test]
    fn signed_pointer_dereferenced_raw_is_non_canonical() {
        // A signed pointer used as an address WITHOUT authentication is
        // non-canonical and faults — why uninstrumented consumers need the
        // strip at the boundary (§7 "Handling external code").
        let m = compile("int main() { return 0; }", "t").unwrap();
        let img = Image::baseline(&m);
        let vm = Vm::new(&img);
        let signed = {
            let mut pac = rsti_pac::PacUnit::for_tests();
            pac.sign(rsti_pac::KeyId::Da, crate::layout::HEAP_BASE, 1)
        };
        assert!(vm.attacker_read(signed, 1).is_err(), "PAC bits break translation");
        let _ = vm;
    }

    #[test]
    fn misaligned_function_address_rejected() {
        let src = r#"
            struct box { long pad; void (*fp)(); };
            struct box* g;
            void f() { }
            void fire() { g->fp(); }
            int main() {
                g = (struct box*) malloc(sizeof(struct box));
                g->fp = f;
                fire();
                return 0;
            }
        "#;
        let m = compile(src, "t").unwrap();
        let img = Image::baseline(&m);
        let mut vm = Vm::new(&img);
        assert_eq!(vm.run_to_function("fire"), RunStop::Entered);
        let obj = vm.heap_live()[0].0;
        let f_addr = vm.func_addr("f").unwrap();
        // Mid-function address (gadget offset): stride misaligned.
        vm.attacker_write_u64(obj + 8, f_addr + 4).unwrap();
        let r = vm.finish();
        assert!(
            matches!(r.status, Status::Trapped(Trap::CallNonFunction { .. })),
            "{:?}",
            r.status
        );
    }

    #[test]
    fn stack_recursion_overflow() {
        let r = run_baseline("int f(int n) { return f(n + 1); } int main() { return f(0); }");
        assert!(matches!(r.status, Status::Trapped(Trap::StackOverflow)), "{:?}", r.status);
    }

    #[test]
    fn module_without_main_traps_instead_of_panicking() {
        let m = compile("int helper() { return 1; }", "t").unwrap();
        let img = Image::baseline(&m);
        let r = Vm::new(&img).run();
        assert!(
            matches!(&r.status, Status::Trapped(Trap::BadProgram(s)) if s.contains("main")),
            "{:?}",
            r.status
        );
        assert!(r.audit.is_empty(), "BadProgram is not an RSTI detection");
    }

    #[test]
    fn poisoned_compiled_cache_still_shares_code_across_clones() {
        // Regression: Clone used to treat a poisoned compiled-cache lock as
        // an *empty* cache, so one panic during compilation forced every
        // later clone of that image to recompile forever. The guard must be
        // recovered instead — the Option inside is always valid.
        use std::sync::Arc;
        let m = compile("int main() { print_int(42); return 0; }", "t").unwrap();
        let p = rsti_core::instrument(&m, Mechanism::Stwc);
        let img = Image::from_instrumented(&p).with_exec(ExecBackend::Compiled);
        let code = img.compiled(); // translate once, fill the cache
        img.poison_compiled_lock_for_tests();
        // A clone of the poisoned image must still share the compiled
        // module (not silently start from an empty cache)…
        let cloned = img.clone();
        assert!(
            Arc::ptr_eq(&code, &cloned.compiled()),
            "clone of a poisoned image must share the already-compiled code"
        );
        // …the original recovers too, and both still execute.
        assert!(Arc::ptr_eq(&code, &img.compiled()));
        for i in [&img, &cloned] {
            let r = Vm::new(i).run();
            assert_eq!(r.status, Status::Exited(0));
            assert_eq!(r.output, vec!["42"]);
        }
    }

    #[test]
    fn violation_produces_audit_record_naming_mechanism_and_site() {
        let src = r#"
            void benign() { }
            void evil() { print_str("EVIL"); }
            struct ctx { void (*cb)(); };
            struct ctx* g_ctx;
            void dispatch() { g_ctx->cb(); }
            int main() {
                g_ctx = (struct ctx*) malloc(sizeof(struct ctx));
                g_ctx->cb = benign;
                dispatch();
                return 0;
            }
        "#;
        let m = compile(src, "t").unwrap();
        for mech in [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl] {
            let p = rsti_core::instrument(&m, mech);
            let img = Image::from_instrumented(&p);
            let mut vm = Vm::new(&img);
            assert_eq!(vm.run_to_function("dispatch"), RunStop::Entered);
            let obj = vm.heap_live()[0].0;
            let evil = vm.func_addr("evil").unwrap();
            vm.attacker_write_u64(obj, evil).unwrap();
            let r = vm.finish();
            assert!(matches!(&r.status, Status::Trapped(t) if t.is_detection()));
            assert_eq!(r.audit.len(), 1, "{mech}: one record per detection");
            let rec = &r.audit[0];
            assert_eq!(rec.mechanism, mech.name(), "{mech}");
            assert_eq!(rec.site, "on_load");
            assert_eq!(rec.inst, "pac_auth");
            assert_eq!(rec.func, "dispatch");
            assert!(rec.detail.contains("PAC"), "{}", rec.detail);
        }
    }
}
