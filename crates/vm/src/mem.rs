//! The VM's memory model.
//!
//! A 48-bit virtual address space split into segments, mirroring a typical
//! user process:
//!
//! | segment | base | contents | attacker-writable |
//! |---|---|---|---|
//! | external code | `0x0800_...` | addresses of uninstrumented library functions | no |
//! | code          | `0x1000_...` | addresses of program functions | no |
//! | globals       | `0x2000_...` | module globals | **yes** |
//! | strings       | `0x3000_...` | string literals (read-only to the program) | **yes** |
//! | heap          | `0x4000_...` | `malloc` arena | **yes** |
//! | stack         | `0x7F00_...` | frame slots (grows up for simplicity) | **yes** |
//!
//! "Attacker-writable" marks what the memory-corruption primitive of the
//! threat model (§3) may touch: an attacker with an arbitrary-write bug can
//! modify any *data* memory but not code, PA keys (they live outside this
//! address space entirely), or the VM's register file and call stack
//! (shadow-stack assumption).

use std::fmt;

/// Segment bases (within a 48-bit VA).
pub mod layout {
    /// Uninstrumented-library function addresses ("libc").
    pub const EXTERNAL_BASE: u64 = 0x0800_0000_0000;
    /// Program function addresses.
    pub const CODE_BASE: u64 = 0x1000_0000_0000;
    /// Global variables.
    pub const GLOBAL_BASE: u64 = 0x2000_0000_0000;
    /// String literals.
    pub const STR_BASE: u64 = 0x3000_0000_0000;
    /// Heap arena.
    pub const HEAP_BASE: u64 = 0x4000_0000_0000;
    /// Stack arena.
    pub const STACK_BASE: u64 = 0x7F00_0000_0000;
    /// Bytes between consecutive function addresses.
    pub const CODE_STRIDE: u64 = 16;
}

/// A memory access fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemFault {
    /// Address outside every mapped segment (includes poisoned pointers).
    Unmapped {
        /// Faulting address.
        addr: u64,
    },
    /// Write to a read-only segment (code, external code).
    ReadOnly {
        /// Faulting address.
        addr: u64,
    },
    /// Access crosses the end of its segment.
    OutOfRange {
        /// Faulting address.
        addr: u64,
        /// Access size.
        len: u64,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemFault::ReadOnly { addr } => write!(f, "write to read-only memory {addr:#x}"),
            MemFault::OutOfRange { addr, len } => {
                write!(f, "access of {len} bytes at {addr:#x} crosses segment end")
            }
        }
    }
}

struct Segment {
    base: u64,
    data: Vec<u8>,
    writable: bool,
    /// Whether the attacker's arbitrary-write primitive may target it.
    attacker: bool,
}

/// The process memory.
pub struct Memory {
    segments: Vec<Segment>,
}

impl Memory {
    /// Creates memory with the given segment sizes (bytes).
    pub fn new(global_size: u64, str_size: u64, heap_size: u64, stack_size: u64) -> Self {
        use layout::*;
        let seg = |base: u64, size: u64, writable: bool, attacker: bool| Segment {
            base,
            data: vec![0u8; size as usize],
            writable,
            attacker,
        };
        Memory {
            segments: vec![
                seg(GLOBAL_BASE, global_size.max(8), true, true),
                seg(STR_BASE, str_size.max(8), false, true),
                seg(HEAP_BASE, heap_size.max(64), true, true),
                seg(STACK_BASE, stack_size.max(64), true, true),
            ],
        }
    }

    /// Segment index for an address. The four segments sit in disjoint
    /// top-byte regions of the 48-bit VA, so the common case is a direct
    /// dispatch on `addr >> 40` instead of a linear scan — this sits under
    /// every load/store the interpreter executes.
    #[inline]
    fn seg_of(&self, addr: u64) -> Option<usize> {
        let si = match addr >> 40 {
            0x20 => 0, // GLOBAL_BASE
            0x30 => 1, // STR_BASE
            0x40 => 2, // HEAP_BASE
            0x7F => 3, // STACK_BASE
            _ => return None,
        };
        let s = &self.segments[si];
        (addr >= s.base && addr < s.base + s.data.len() as u64).then_some(si)
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    /// Faults when the range is unmapped.
    pub fn read(&self, addr: u64, len: u64) -> Result<&[u8], MemFault> {
        let si = self.seg_of(addr).ok_or(MemFault::Unmapped { addr })?;
        let s = &self.segments[si];
        let off = (addr - s.base) as usize;
        let end = off.checked_add(len as usize).ok_or(MemFault::OutOfRange { addr, len })?;
        if end > s.data.len() {
            return Err(MemFault::OutOfRange { addr, len });
        }
        Ok(&s.data[off..end])
    }

    /// Writes bytes at `addr`, honouring segment permissions.
    ///
    /// # Errors
    /// Faults when the range is unmapped or read-only.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        let si = self.seg_of(addr).ok_or(MemFault::Unmapped { addr })?;
        let s = &mut self.segments[si];
        if !s.writable {
            return Err(MemFault::ReadOnly { addr });
        }
        let off = (addr - s.base) as usize;
        let len = bytes.len() as u64;
        let end = off
            .checked_add(bytes.len())
            .ok_or(MemFault::OutOfRange { addr, len })?;
        if end > s.data.len() {
            return Err(MemFault::OutOfRange { addr, len });
        }
        s.data[off..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Zero-fills `len` bytes at `addr` in place (no temporary buffer) —
    /// used by the interpreter to clear fresh stack slots.
    ///
    /// # Errors
    /// Faults when the range is unmapped or read-only.
    pub fn write_zeros(&mut self, addr: u64, len: u64) -> Result<(), MemFault> {
        let si = self.seg_of(addr).ok_or(MemFault::Unmapped { addr })?;
        let s = &mut self.segments[si];
        if !s.writable {
            return Err(MemFault::ReadOnly { addr });
        }
        let off = (addr - s.base) as usize;
        let end = off.checked_add(len as usize).ok_or(MemFault::OutOfRange { addr, len })?;
        if end > s.data.len() {
            return Err(MemFault::OutOfRange { addr, len });
        }
        s.data[off..end].fill(0);
        Ok(())
    }

    /// The attacker's arbitrary-write primitive: may target any
    /// attacker-reachable data segment regardless of program-level
    /// permissions (a buffer overflow does not respect `const`).
    ///
    /// # Errors
    /// Faults only when the range is outside attacker-reachable memory
    /// (code, keys, VM state).
    pub fn attacker_write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        let si = self.seg_of(addr).ok_or(MemFault::Unmapped { addr })?;
        let s = &mut self.segments[si];
        if !s.attacker {
            return Err(MemFault::ReadOnly { addr });
        }
        let off = (addr - s.base) as usize;
        let len = bytes.len() as u64;
        let end = off
            .checked_add(bytes.len())
            .ok_or(MemFault::OutOfRange { addr, len })?;
        if end > s.data.len() {
            return Err(MemFault::OutOfRange { addr, len });
        }
        s.data[off..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemFault> {
        let b = self.read(addr, 8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemFault> {
        self.write(addr, &v.to_le_bytes())
    }
}

/// A bump heap allocator over the heap segment, with free tracking for
/// temporal-safety experiments (RSTI does not *prevent* use-after-free —
/// §7 — so freed memory stays readable; we only record the state).
#[derive(Debug, Clone)]
pub struct Allocator {
    next: u64,
    limit: u64,
    /// Live allocations: (addr, size).
    pub live: Vec<(u64, u64)>,
    /// Freed allocations: (addr, size).
    pub freed: Vec<(u64, u64)>,
}

impl Allocator {
    /// A fresh allocator over the heap segment.
    pub fn new(heap_size: u64) -> Self {
        Allocator {
            next: layout::HEAP_BASE,
            limit: layout::HEAP_BASE + heap_size,
            live: Vec::new(),
            freed: Vec::new(),
        }
    }

    /// Allocates `size` bytes (8-byte aligned); `None` when exhausted.
    pub fn malloc(&mut self, size: u64) -> Option<u64> {
        let size = size.max(1).div_ceil(8) * 8;
        if self.next + size > self.limit {
            return None;
        }
        let addr = self.next;
        self.next += size;
        self.live.push((addr, size));
        Some(addr)
    }

    /// Frees an allocation; `false` when `addr` is not a live allocation
    /// base (double free / invalid free).
    pub fn free(&mut self, addr: u64) -> bool {
        if let Some(i) = self.live.iter().position(|&(a, _)| a == addr) {
            let e = self.live.remove(i);
            self.freed.push(e);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmented_read_write() {
        let mut m = Memory::new(64, 64, 256, 256);
        m.write_u64(layout::GLOBAL_BASE + 8, 0xDEAD).unwrap();
        assert_eq!(m.read_u64(layout::GLOBAL_BASE + 8).unwrap(), 0xDEAD);
        assert!(matches!(m.read_u64(0x1234), Err(MemFault::Unmapped { .. })));
    }

    #[test]
    fn strings_are_program_read_only_but_attacker_writable() {
        let mut m = Memory::new(64, 64, 64, 64);
        let a = layout::STR_BASE;
        assert!(matches!(m.write(a, b"x"), Err(MemFault::ReadOnly { .. })));
        m.attacker_write(a, b"x").unwrap();
        assert_eq!(m.read(a, 1).unwrap(), b"x");
    }

    #[test]
    fn out_of_range_detected() {
        let m = Memory::new(16, 16, 16, 16);
        assert!(matches!(
            m.read(layout::GLOBAL_BASE + 12, 8),
            Err(MemFault::OutOfRange { .. })
        ));
    }

    #[test]
    fn allocator_bump_and_free() {
        let mut a = Allocator::new(1024);
        let p = a.malloc(10).unwrap();
        let q = a.malloc(10).unwrap();
        assert_eq!(q - p, 16, "rounded to 8-byte multiples");
        assert!(a.free(p));
        assert!(!a.free(p), "double free reported");
        assert_eq!(a.live.len(), 1);
        assert_eq!(a.freed.len(), 1);
    }

    #[test]
    fn allocator_exhaustion() {
        let mut a = Allocator::new(32);
        assert!(a.malloc(16).is_some());
        assert!(a.malloc(16).is_some());
        assert!(a.malloc(1).is_none());
    }
}
