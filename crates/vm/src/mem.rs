//! The VM's memory model.
//!
//! A 48-bit virtual address space split into segments, mirroring a typical
//! user process:
//!
//! | segment | base | contents | attacker-writable |
//! |---|---|---|---|
//! | external code | `0x0800_...` | addresses of uninstrumented library functions | no |
//! | code          | `0x1000_...` | addresses of program functions | no |
//! | globals       | `0x2000_...` | module globals | **yes** |
//! | strings       | `0x3000_...` | string literals (read-only to the program) | **yes** |
//! | heap          | `0x4000_...` | `malloc` arena | **yes** |
//! | stack         | `0x7F00_...` | frame slots (grows up for simplicity) | **yes** |
//!
//! "Attacker-writable" marks what the memory-corruption primitive of the
//! threat model (§3) may touch: an attacker with an arbitrary-write bug can
//! modify any *data* memory but not code, PA keys (they live outside this
//! address space entirely), or the VM's register file and call stack
//! (shadow-stack assumption).

use std::fmt;

/// Segment bases (within a 48-bit VA).
pub mod layout {
    /// Uninstrumented-library function addresses ("libc").
    pub const EXTERNAL_BASE: u64 = 0x0800_0000_0000;
    /// Program function addresses.
    pub const CODE_BASE: u64 = 0x1000_0000_0000;
    /// Global variables. Re-exported from `rsti-ir`: the base (and the
    /// whole globals layout, [`rsti_ir::Module::global_addresses`]) is a
    /// module-level contract so the optimizer can fold statically-known
    /// addresses into PAC modifiers at optimize time.
    pub const GLOBAL_BASE: u64 = rsti_ir::GLOBAL_SEG_BASE;
    /// String literals.
    pub const STR_BASE: u64 = 0x3000_0000_0000;
    /// Heap arena.
    pub const HEAP_BASE: u64 = 0x4000_0000_0000;
    /// Stack arena.
    pub const STACK_BASE: u64 = 0x7F00_0000_0000;
    /// Bytes between consecutive function addresses.
    pub const CODE_STRIDE: u64 = 16;
    /// Largest size a single data segment may be created with (bytes).
    ///
    /// Segment sizes are program-influenceable (a huge global array grows
    /// the globals segment), so an unchecked `vec![0u8; size]` would turn
    /// a hostile-but-valid program into a host allocation abort instead of
    /// a guest trap. 256 MiB is ~64x the default heap/stack arenas and far
    /// above anything the workloads need, while staying trivially
    /// allocatable on the host.
    pub const MAX_SEGMENT: u64 = 256 << 20;
}

/// A memory access fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemFault {
    /// Address outside every mapped segment (includes poisoned pointers).
    Unmapped {
        /// Faulting address.
        addr: u64,
    },
    /// Write to a read-only segment (code, external code).
    ReadOnly {
        /// Faulting address.
        addr: u64,
    },
    /// Access crosses the end of its segment.
    OutOfRange {
        /// Faulting address.
        addr: u64,
        /// Access size.
        len: u64,
    },
    /// A segment was requested beyond [`layout::MAX_SEGMENT`] — the guest
    /// program's data demands exceed what the VM will host.
    SegmentTooLarge {
        /// Segment base.
        base: u64,
        /// Requested size.
        size: u64,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemFault::ReadOnly { addr } => write!(f, "write to read-only memory {addr:#x}"),
            MemFault::OutOfRange { addr, len } => {
                write!(f, "access of {len} bytes at {addr:#x} crosses segment end")
            }
            MemFault::SegmentTooLarge { base, size } => {
                write!(f, "segment at {base:#x} requested with {size} bytes (limit {})", layout::MAX_SEGMENT)
            }
        }
    }
}

struct Segment {
    base: u64,
    /// Addressable extent in bytes. `data` covers a prefix of it and is
    /// grown on first write; bytes in `data.len()..size` are logically
    /// zero. A fresh VM therefore never pays a memset of the full arena —
    /// the dominant construction cost for short runs and fuzz campaigns,
    /// which build thousands of VMs over mostly-untouched segments.
    size: usize,
    data: Vec<u8>,
    writable: bool,
    /// Whether the attacker's arbitrary-write primitive may target it.
    attacker: bool,
}

impl Segment {
    /// Materializes `data` up to at least `end` bytes (amortized doubling,
    /// capped at the segment extent). Returns `false` when `end` is
    /// outside the segment.
    #[cold]
    fn grow_to(&mut self, end: usize) -> bool {
        if end > self.size {
            return false;
        }
        let new_len = end.max(self.data.len() * 2).min(self.size);
        self.data.resize(new_len, 0);
        true
    }
}

/// The process memory.
pub struct Memory {
    segments: Vec<Segment>,
}

/// In-segment offsets: every data segment's base is exactly its VA tag
/// shifted into place (`tag << 40`, asserted below), so the offset of an
/// address within its segment is a mask — no base load, no subtraction.
const OFF_MASK: u64 = (1 << 40) - 1;

// The dispatch in `seg_idx` and the mask above hard-code the segment
// bases; fail the build if the layout ever moves.
const _: () = {
    assert!(layout::GLOBAL_BASE == 0x20 << 40);
    assert!(layout::STR_BASE == 0x30 << 40);
    assert!(layout::HEAP_BASE == 0x40 << 40);
    assert!(layout::STACK_BASE == 0x7F << 40);
};

/// Segment index for an address's VA tag, ignoring the segment's actual
/// extent (callers probing `data` or `size` handle out-of-extent).
#[inline(always)]
fn seg_idx(addr: u64) -> Option<usize> {
    match addr >> 40 {
        0x20 => Some(0), // GLOBAL_BASE
        0x30 => Some(1), // STR_BASE
        0x40 => Some(2), // HEAP_BASE
        0x7F => Some(3), // STACK_BASE
        _ => None,
    }
}

impl Memory {
    /// Creates memory with the given segment sizes (bytes).
    ///
    /// # Errors
    /// Returns [`MemFault::SegmentTooLarge`] when any requested segment
    /// exceeds [`layout::MAX_SEGMENT`] — segment sizes derive from the
    /// guest program (global arrays, arena configuration), so an absurd
    /// request must become a reportable fault, not a host `vec![0u8; n]`
    /// capacity panic or OOM abort.
    pub fn new(
        global_size: u64,
        str_size: u64,
        heap_size: u64,
        stack_size: u64,
    ) -> Result<Self, MemFault> {
        use layout::*;
        let seg = |base: u64, size: u64, writable: bool, attacker: bool| {
            if size > MAX_SEGMENT {
                return Err(MemFault::SegmentTooLarge { base, size });
            }
            Ok(Segment { base, size: size as usize, data: Vec::new(), writable, attacker })
        };
        Ok(Memory {
            segments: vec![
                seg(GLOBAL_BASE, global_size.max(8), true, true)?,
                seg(STR_BASE, str_size.max(8), false, true)?,
                seg(HEAP_BASE, heap_size.max(64), true, true)?,
                seg(STACK_BASE, stack_size.max(64), true, true)?,
            ],
        })
    }

    /// Segment index for an address. The four segments sit in disjoint
    /// top-byte regions of the 48-bit VA, so the common case is a direct
    /// dispatch on `addr >> 40` instead of a linear scan — this sits under
    /// every load/store the interpreter executes.
    #[inline]
    fn seg_of(&self, addr: u64) -> Option<usize> {
        let si = seg_idx(addr)?;
        let s = &self.segments[si];
        (addr >= s.base && addr < s.base + s.size as u64).then_some(si)
    }

    /// Reads `len` bytes at `addr`. Bytes past the materialized prefix of
    /// the segment read as zero (they have never been written).
    ///
    /// # Errors
    /// Faults when the range is unmapped.
    pub fn read(&self, addr: u64, len: u64) -> Result<Vec<u8>, MemFault> {
        let si = self.seg_of(addr).ok_or(MemFault::Unmapped { addr })?;
        let s = &self.segments[si];
        // checked_sub, not `-`: the offset must never be computed before
        // (or independently of) the `addr >= base` validation — an
        // unsigned underflow here panics in debug and silently wraps to a
        // huge offset in release.
        let off = addr.checked_sub(s.base).ok_or(MemFault::OutOfRange { addr, len })? as usize;
        let end = off.checked_add(len as usize).ok_or(MemFault::OutOfRange { addr, len })?;
        if end > s.size {
            return Err(MemFault::OutOfRange { addr, len });
        }
        let mut out = vec![0u8; len as usize];
        let avail = s.data.len().saturating_sub(off).min(len as usize);
        out[..avail].copy_from_slice(&s.data[off..off + avail]);
        Ok(out)
    }

    /// Writes bytes at `addr`, honouring segment permissions.
    ///
    /// # Errors
    /// Faults when the range is unmapped or read-only.
    #[inline]
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        let si = self.seg_of(addr).ok_or(MemFault::Unmapped { addr })?;
        let s = &mut self.segments[si];
        if !s.writable {
            return Err(MemFault::ReadOnly { addr });
        }
        let len = bytes.len() as u64;
        let off = addr.checked_sub(s.base).ok_or(MemFault::OutOfRange { addr, len })? as usize;
        let end = off
            .checked_add(bytes.len())
            .ok_or(MemFault::OutOfRange { addr, len })?;
        if end > s.data.len() && !s.grow_to(end) {
            return Err(MemFault::OutOfRange { addr, len });
        }
        s.data[off..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Zero-fills `len` bytes at `addr` in place (no temporary buffer) —
    /// used by the interpreter to clear fresh stack slots. Bytes past the
    /// materialized prefix are already zero, so the fill never grows the
    /// segment.
    ///
    /// # Errors
    /// Faults when the range is unmapped or read-only.
    pub fn write_zeros(&mut self, addr: u64, len: u64) -> Result<(), MemFault> {
        let si = self.seg_of(addr).ok_or(MemFault::Unmapped { addr })?;
        let s = &mut self.segments[si];
        if !s.writable {
            return Err(MemFault::ReadOnly { addr });
        }
        let off = addr.checked_sub(s.base).ok_or(MemFault::OutOfRange { addr, len })? as usize;
        let end = off.checked_add(len as usize).ok_or(MemFault::OutOfRange { addr, len })?;
        if end > s.size {
            return Err(MemFault::OutOfRange { addr, len });
        }
        let mat = s.data.len();
        if off < mat {
            s.data[off..end.min(mat)].fill(0);
        }
        Ok(())
    }

    /// The attacker's arbitrary-write primitive: may target any
    /// attacker-reachable data segment regardless of program-level
    /// permissions (a buffer overflow does not respect `const`).
    ///
    /// # Errors
    /// Faults only when the range is outside attacker-reachable memory
    /// (code, keys, VM state).
    pub fn attacker_write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        let si = self.seg_of(addr).ok_or(MemFault::Unmapped { addr })?;
        let s = &mut self.segments[si];
        if !s.attacker {
            return Err(MemFault::ReadOnly { addr });
        }
        let len = bytes.len() as u64;
        let off = addr.checked_sub(s.base).ok_or(MemFault::OutOfRange { addr, len })? as usize;
        let end = off
            .checked_add(bytes.len())
            .ok_or(MemFault::OutOfRange { addr, len })?;
        if end > s.data.len() && !s.grow_to(end) {
            return Err(MemFault::OutOfRange { addr, len });
        }
        s.data[off..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads a fixed-width scalar. The compile-time length lets the range
    /// check fold to one comparison and the copy to a single move — this
    /// sits under every typed load in both execution engines. The
    /// materialized prefix covers all written memory, so the fast path
    /// misses only on never-written (zero) addresses or genuine faults.
    ///
    /// # Errors
    /// Faults when the range is unmapped.
    #[inline(always)]
    pub fn read_arr<const N: usize>(&self, addr: u64) -> Result<[u8; N], MemFault> {
        let Some(si) = seg_idx(addr) else { return Err(MemFault::Unmapped { addr }) };
        // Segment bases are `tag << 40`, so the offset is a mask and the
        // slice probe subsumes the range check; out-of-extent offsets miss
        // the materialized prefix and sort out their fault in the tail.
        let off = (addr & OFF_MASK) as usize;
        match self.segments[si].data.get(off..off + N) {
            Some(b) => Ok(b.try_into().expect("length checked")),
            None => self.read_arr_slow::<N>(si, off, addr),
        }
    }

    /// Out-of-prefix tail of [`Memory::read_arr`]: reads that touch the
    /// never-materialized (all-zero) region, or genuinely cross the
    /// segment end.
    #[cold]
    #[inline(never)]
    fn read_arr_slow<const N: usize>(
        &self,
        si: usize,
        off: usize,
        addr: u64,
    ) -> Result<[u8; N], MemFault> {
        let s = &self.segments[si];
        // Entirely past the segment extent is unmapped address space (the
        // tag region is 1 TiB; the segment covers a prefix of it); merely
        // crossing the extent is a ranged access fault.
        if off >= s.size {
            return Err(MemFault::Unmapped { addr });
        }
        // `off < s.size <= MAX_SEGMENT` and N <= 8: no overflow.
        if off + N > s.size {
            return Err(MemFault::OutOfRange { addr, len: N as u64 });
        }
        let mut out = [0u8; N];
        // `off` may sit entirely past the materialized prefix (a read of
        // never-written zero-fill): avail is 0 there, and indexing
        // `data[off..off]` would still panic on `off > len`.
        let avail = s.data.len().saturating_sub(off).min(N);
        if avail > 0 {
            out[..avail].copy_from_slice(&s.data[off..off + avail]);
        }
        Ok(out)
    }

    /// Writes a fixed-width scalar; see [`Memory::read_arr`].
    ///
    /// # Errors
    /// Faults when the range is unmapped or read-only.
    #[inline(always)]
    pub fn write_arr<const N: usize>(&mut self, addr: u64, bytes: [u8; N]) -> Result<(), MemFault> {
        let Some(si) = seg_idx(addr) else { return Err(MemFault::Unmapped { addr }) };
        let off = (addr & OFF_MASK) as usize;
        let s = &mut self.segments[si];
        if s.writable {
            if let Some(b) = s.data.get_mut(off..off + N) {
                b.copy_from_slice(&bytes);
                return Ok(());
            }
        }
        // Out of the materialized prefix or a read-only segment: the tail
        // re-derives the precise fault (including unmapped-vs-read-only
        // ordering) or materializes and retries.
        self.write_arr_slow::<N>(si, off, addr, bytes)
    }

    /// Out-of-prefix tail of [`Memory::write_arr`]: materializes the
    /// segment up to the write, or faults past the segment end.
    #[cold]
    #[inline(never)]
    fn write_arr_slow<const N: usize>(
        &mut self,
        si: usize,
        off: usize,
        addr: u64,
        bytes: [u8; N],
    ) -> Result<(), MemFault> {
        let s = &mut self.segments[si];
        // Fault precedence mirrors the segment walk: addresses past the
        // extent are unmapped before permissions are consulted, then
        // read-only, then extent-crossing.
        if off >= s.size {
            return Err(MemFault::Unmapped { addr });
        }
        if !s.writable {
            return Err(MemFault::ReadOnly { addr });
        }
        if !s.grow_to(off + N) {
            return Err(MemFault::OutOfRange { addr, len: N as u64 });
        }
        s.data[off..off + N].copy_from_slice(&bytes);
        Ok(())
    }

    /// Reads a little-endian u64.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemFault> {
        self.read_arr::<8>(addr).map(u64::from_le_bytes)
    }

    /// Writes a little-endian u64.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemFault> {
        self.write_arr::<8>(addr, v.to_le_bytes())
    }
}

/// A bump heap allocator over the heap segment, with free tracking for
/// temporal-safety experiments (RSTI does not *prevent* use-after-free —
/// §7 — so freed memory stays readable; we only record the state).
#[derive(Debug, Clone)]
pub struct Allocator {
    next: u64,
    limit: u64,
    /// Live allocations: (addr, size).
    pub live: Vec<(u64, u64)>,
    /// Freed allocations: (addr, size).
    pub freed: Vec<(u64, u64)>,
}

impl Allocator {
    /// A fresh allocator over the heap segment.
    pub fn new(heap_size: u64) -> Self {
        Allocator {
            next: layout::HEAP_BASE,
            limit: layout::HEAP_BASE.saturating_add(heap_size),
            live: Vec::new(),
            freed: Vec::new(),
        }
    }

    /// Allocates `size` bytes (8-byte aligned); `None` when exhausted.
    ///
    /// Every step is checked: `size` is attacker-influenceable (a guest
    /// `malloc(n)` with arbitrary `n`), and near-`u64::MAX` requests used
    /// to overflow the alignment round-up — a debug panic, and in release
    /// a silent wrap to a tiny allocation. Overflow now reports
    /// exhaustion, which the VM surfaces as a `HeapExhausted` trap.
    pub fn malloc(&mut self, size: u64) -> Option<u64> {
        let size = size.max(1).checked_add(7)? & !7;
        let end = self.next.checked_add(size)?;
        if end > self.limit {
            return None;
        }
        let addr = self.next;
        self.next = end;
        self.live.push((addr, size));
        Some(addr)
    }

    /// Frees an allocation; `false` when `addr` is not a live allocation
    /// base (double free / invalid free).
    pub fn free(&mut self, addr: u64) -> bool {
        if let Some(i) = self.live.iter().position(|&(a, _)| a == addr) {
            let e = self.live.remove(i);
            self.freed.push(e);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmented_read_write() {
        let mut m = Memory::new(64, 64, 256, 256).unwrap();
        m.write_u64(layout::GLOBAL_BASE + 8, 0xDEAD).unwrap();
        assert_eq!(m.read_u64(layout::GLOBAL_BASE + 8).unwrap(), 0xDEAD);
        assert!(matches!(m.read_u64(0x1234), Err(MemFault::Unmapped { .. })));
    }

    #[test]
    fn strings_are_program_read_only_but_attacker_writable() {
        let mut m = Memory::new(64, 64, 64, 64).unwrap();
        let a = layout::STR_BASE;
        assert!(matches!(m.write(a, b"x"), Err(MemFault::ReadOnly { .. })));
        m.attacker_write(a, b"x").unwrap();
        assert_eq!(m.read(a, 1).unwrap(), b"x");
    }

    #[test]
    fn scalar_read_past_materialized_prefix_is_zero_fill() {
        // Materialize only the first 8 bytes, then read a scalar whose
        // whole range sits beyond the prefix but inside the segment: it is
        // never-written zero-fill, not a panic (regression: the empty-copy
        // path used to index `data[off..off]` with `off > len`).
        let mut m = Memory::new(64, 64, 64, 64).unwrap();
        m.write_u64(layout::GLOBAL_BASE, 0xBEEF).unwrap();
        assert_eq!(m.read_u64(layout::GLOBAL_BASE + 16).unwrap(), 0);
        assert_eq!(m.read_arr::<4>(layout::GLOBAL_BASE + 24).unwrap(), [0u8; 4]);
    }

    #[test]
    fn out_of_range_detected() {
        let m = Memory::new(16, 16, 16, 16).unwrap();
        assert!(matches!(
            m.read(layout::GLOBAL_BASE + 12, 8),
            Err(MemFault::OutOfRange { .. })
        ));
    }

    #[test]
    fn address_below_segment_base_faults_instead_of_underflowing() {
        // Fuzz-harvested (rsti-fuzz): every accessor used to compute
        // `(addr - s.base) as usize` with an unchecked subtraction; an
        // address below the segment base must fault, never underflow.
        let mut m = Memory::new(64, 64, 64, 64).unwrap();
        for base in [layout::GLOBAL_BASE, layout::STR_BASE, layout::HEAP_BASE, layout::STACK_BASE]
        {
            let below = base - 1;
            assert!(m.read(below, 8).is_err(), "read below {base:#x}");
            assert!(m.write(below, &[0; 8]).is_err(), "write below {base:#x}");
            assert!(m.write_zeros(below, 8).is_err(), "zeros below {base:#x}");
            assert!(m.attacker_write(below, &[0; 8]).is_err(), "attacker below {base:#x}");
        }
    }

    #[test]
    fn oversized_segment_request_is_a_fault_not_a_panic() {
        // Fuzz-harvested: `vec![0u8; size as usize]` on a huge guest-driven
        // size used to abort the host with a capacity panic / OOM.
        assert!(matches!(
            Memory::new(u64::MAX, 8, 8, 8),
            Err(MemFault::SegmentTooLarge { base: layout::GLOBAL_BASE, .. })
        ));
        assert!(matches!(
            Memory::new(8, 8, layout::MAX_SEGMENT + 1, 8),
            Err(MemFault::SegmentTooLarge { base: layout::HEAP_BASE, .. })
        ));
        assert!(Memory::new(8, 8, layout::MAX_SEGMENT, 64).is_ok());
    }

    #[test]
    fn malloc_of_near_max_size_returns_none() {
        // Fuzz-harvested: the 8-byte alignment round-up used to overflow
        // for sizes in the top 8 bytes of the u64 range (debug panic,
        // release wrap-to-tiny-allocation).
        let mut a = Allocator::new(1024);
        assert_eq!(a.malloc(u64::MAX), None);
        assert_eq!(a.malloc(u64::MAX - 7), None);
        assert_eq!(a.malloc(i64::MAX as u64), None);
        // The allocator is still usable after rejecting them.
        assert!(a.malloc(16).is_some());
    }

    #[test]
    fn allocator_bump_and_free() {
        let mut a = Allocator::new(1024);
        let p = a.malloc(10).unwrap();
        let q = a.malloc(10).unwrap();
        assert_eq!(q - p, 16, "rounded to 8-byte multiples");
        assert!(a.free(p));
        assert!(!a.free(p), "double free reported");
        assert_eq!(a.live.len(), 1);
        assert_eq!(a.freed.len(), 1);
    }

    #[test]
    fn allocator_exhaustion() {
        let mut a = Allocator::new(32);
        assert!(a.malloc(16).is_some());
        assert!(a.malloc(16).is_some());
        assert!(a.malloc(1).is_none());
    }
}
