//! The closure-threaded compiled execution engine.
//!
//! [`compile_module`] translates every basic block, once, into a chain of
//! Rust closures ([`CompiledOp`]) with the interpreter's per-instruction
//! work hoisted to compile time:
//!
//! * **operand slots** are pre-resolved — a register index, an immediate,
//!   or an already-laid-out global/string/function address — so executing
//!   an operand is an array load instead of an `Operand` match;
//! * **type layouts are pre-folded** — `Alloca` sizes, `FieldAddr`
//!   offsets, `IndexAddr` element sizes, and `Load` width dispatch become
//!   captured constants;
//! * **PAC call shapes are pre-computed** — key ids, static modifiers,
//!   site indices, and the enforcement-backend arm are chosen at compile
//!   time;
//! * **successor links are direct-threaded** — `br`/`cond_br` continue in
//!   the driver loop without returning to the outer dispatch.
//!
//! The engine is *observably identical* to the interpreter: same traps
//! (including `BadProgram` message text), same violation audit records,
//! same cycle-model and instruction accounting, same telemetry counters.
//! That is a load-bearing property, not a nicety — it makes the
//! interpreter the differential oracle for this engine (rsti-fuzz checks
//! every mechanism × opt level under both), and it means every Fig. 9/10
//! number is backend-independent. Parity is engineered in three places:
//!
//! 1. **Accounting**: straight-line runs are pre-charged from per-block
//!    cycle prefix sums and rolled back over the unexecuted suffix when
//!    an op traps or transfers control, reproducing the interpreter's
//!    charge-before-execute totals exactly; block entry/exit is funded
//!    through the shared [`Vm::charge_block_transfer`] site.
//! 2. **Diagnostics**: the interpreter commits the frame's instruction
//!    index before every instruction so trap records can read the source
//!    line. Compiled closures commit it lazily — only on the (cold) paths
//!    that build audit records, and before every frame push.
//! 3. **Rare shapes**: `ret`/`unreachable` and anything layout-dependent
//!    in a malformed image defer to the interpreter's own code paths, so
//!    the tricky cases have exactly one implementation.

use super::*;
use rsti_ir::{BasicBlock, Function};
use std::cmp::Ordering;

/// What an op tells the driver to do next. Traps travel boxed so the
/// closure return value fits in registers — the unboxed `Result<_, Trap>`
/// is several words wide and forced a memory round-trip on *every* op
/// dispatch, trapping or not.
pub(crate) enum Control {
    /// Fall through to the next op in the block.
    Next,
    /// Control left the block (a frame was pushed): return to the driver.
    Transfer,
    /// The op trapped.
    Trap(Box<Trap>),
}

type OpFn = Box<dyn for<'a, 'b> Fn(&'a mut Vm<'b>) -> Control + Send + Sync>;

/// `?` for closures returning [`Control`]: unwraps a `Result<_, Trap>` or
/// routes the trap through the (boxed) control channel.
macro_rules! tri {
    ($e:expr) => {
        match $e {
            Ok(v) => v,
            Err(t) => return Control::Trap(Box::new(t)),
        }
    };
}

/// Per-instruction accounting the interpreter would have charged — kept
/// out of the closure array so the fast path streams only fat pointers.
pub(crate) struct OpCharge {
    /// Cycle cost ([`CostModel::cost`] of the source instruction).
    cost: u64,
    /// Opcode class index, for the telemetry-enabled slow path.
    class: usize,
    /// Check-site id for PAC-family ops ([`NO_SITE`] otherwise), assigned
    /// in the same `(func, block, inst)` scan order as
    /// `rsti_core::check_sites` — the attribution slow path records per-
    /// site stats against the identical table the interpreter looks up.
    site: u32,
}

/// A compiled terminator. Branches are direct-threaded; everything else
/// (returns, unreachable) defers to the interpreter's `exec_term` so the
/// shadow-stack/corrupted-return logic has a single implementation.
pub(crate) enum CompiledTerm {
    Br(u32),
    /// Conditional branch on a register — the dominant shape, with the
    /// operand match pre-folded away.
    CondBrReg { v: ValueId, then_bb: u32, else_bb: u32 },
    CondBr { cond: Slot, then_bb: u32, else_bb: u32 },
    Slow(Terminator),
}

/// One compiled basic block.
pub(crate) struct CompiledBlock {
    ops: Vec<OpFn>,
    /// Slow-path accounting, parallel to `ops`.
    charge: Vec<OpCharge>,
    /// `cost_prefix[i]` = cycles of `ops[..i]`; length `ops.len() + 1`.
    /// Lets the fast path charge (and roll back) any run of ops with two
    /// subtractions instead of a loop.
    cost_prefix: Vec<u64>,
    /// `cost_prefix[ops.len()]`, inlined in the block header: entries at
    /// `idx == 0` — every transfer except a call resume — charge without
    /// touching the prefix-sum allocation.
    total_cost: u64,
    term: CompiledTerm,
}

/// A compiled function body (empty for externals, which can never hold a
/// frame).
pub(crate) struct CompiledFunc {
    blocks: Vec<CompiledBlock>,
}

/// A fully compiled module, cached on the [`Image`].
pub(crate) struct CompiledModule {
    funcs: Vec<CompiledFunc>,
    /// The image configuration the code was specialized against; the
    /// cache revalidates this before reuse.
    pub(crate) fingerprint: (CostModel, Backend),
    /// Total compiled blocks (telemetry).
    pub(crate) n_blocks: u64,
}

/// A pre-resolved operand.
#[derive(Clone, Copy)]
pub(crate) enum Slot {
    /// Frame register (generation-checked at read, like `Vm::eval`).
    Reg(ValueId),
    /// Immediate: constants, and global/string/function addresses folded
    /// against the module's deterministic layout.
    Imm(RtVal),
    /// Operand referencing a missing global/string table entry — fails
    /// exactly when (and how) the interpreter's `eval` would.
    Bad(&'static str, usize),
}

#[cold]
#[inline(never)]
fn undefined_use(v: ValueId) -> Trap {
    Trap::BadProgram(format!("use of undefined {v}"))
}

/// The interpreter's silent int coercion (`binop`'s integer arm).
#[inline(always)]
fn int_of(v: RtVal) -> i64 {
    match v {
        RtVal::I(i) => i,
        RtVal::P(p) => p as i64,
        RtVal::F(f) => f as i64,
    }
}

/// The interpreter's float coercion (`binop`'s F64 arm), trap text
/// included.
#[inline(always)]
fn float_of(v: RtVal) -> Result<f64, Trap> {
    match v {
        RtVal::F(f) => Ok(f),
        RtVal::I(i) => Ok(i as f64),
        RtVal::P(_) => Err(Trap::BadProgram("pointer in float op".into())),
    }
}

impl Slot {
    #[inline(always)]
    fn read(&self, vm: &Vm<'_>) -> Result<RtVal, Trap> {
        match self {
            Slot::Reg(v) => {
                let Some(&(tag, val)) = vm.regs.get(vm.reg_base + v.0 as usize) else {
                    return Err(oob("register", v.0 as usize));
                };
                if tag != vm.cur_gen {
                    return Err(undefined_use(*v));
                }
                Ok(val)
            }
            Slot::Imm(v) => Ok(*v),
            Slot::Bad(what, idx) => Err(oob(what, *idx)),
        }
    }

    #[inline(always)]
    fn read_ptr(&self, vm: &Vm<'_>) -> Result<u64, Trap> {
        vm.as_ptr(self.read(vm)?)
    }
}

/// Monomorphic operand access. A closure body that reads through [`Slot`]
/// carries a per-execution variant branch — and because the closure code
/// is shared by every instruction instance of that opcode, the branch
/// site sees mixed Reg/Imm patterns and mispredicts. `dispatch2!` folds
/// the match away at compile time for the dominant combinations.
trait SlotR: Copy + Send + Sync + 'static {
    fn get(self, vm: &Vm<'_>) -> Result<RtVal, Trap>;
}

/// A known-register operand: just the bounds + generation check.
#[derive(Clone, Copy)]
struct RegS(ValueId);

/// A known-immediate operand: no runtime work at all.
#[derive(Clone, Copy)]
struct ImmS(RtVal);

impl SlotR for RegS {
    #[inline(always)]
    fn get(self, vm: &Vm<'_>) -> Result<RtVal, Trap> {
        let Some(&(tag, val)) = vm.regs.get(vm.reg_base + self.0 .0 as usize) else {
            return Err(oob("register", self.0 .0 as usize));
        };
        if tag != vm.cur_gen {
            return Err(undefined_use(self.0));
        }
        Ok(val)
    }
}

impl SlotR for ImmS {
    #[inline(always)]
    fn get(self, _vm: &Vm<'_>) -> Result<RtVal, Trap> {
        Ok(self.0)
    }
}

/// The generic fallback (covers `Bad`, and `Imm x Imm` pairs the
/// optimizer didn't fold).
impl SlotR for Slot {
    #[inline(always)]
    fn get(self, vm: &Vm<'_>) -> Result<RtVal, Trap> {
        self.read(vm)
    }
}

/// Expands `$body` once per operand-kind combination of two slots, with
/// `$a`/`$b` bound to monomorphic [`SlotR`] accessors. Each expansion
/// builds its own closure type, so the `Slot` match runs at compile time,
/// not per executed op.
macro_rules! dispatch2 {
    ($l:expr, $r:expr, |$a:ident, $b:ident| $body:expr) => {
        match ($l, $r) {
            (Slot::Reg(x), Slot::Reg(y)) => {
                let ($a, $b) = (RegS(x), RegS(y));
                $body
            }
            (Slot::Reg(x), Slot::Imm(y)) => {
                let ($a, $b) = (RegS(x), ImmS(y));
                $body
            }
            (Slot::Imm(x), Slot::Reg(y)) => {
                let ($a, $b) = (ImmS(x), RegS(y));
                $body
            }
            (l, r) => {
                let ($a, $b) = (l, r);
                $body
            }
        }
    };
}

/// Single-slot counterpart of [`dispatch2!`].
macro_rules! dispatch1 {
    ($l:expr, |$a:ident| $body:expr) => {
        match $l {
            Slot::Reg(x) => {
                let $a = RegS(x);
                $body
            }
            Slot::Imm(x) => {
                let $a = ImmS(x);
                $body
            }
            l => {
                let $a = l;
                $body
            }
        }
    };
}

/// Pre-folded `Load` width dispatch (the `load_typed` match, decided at
/// compile time).
enum LoadKind {
    I8,
    I16,
    I32,
    I64,
    F64,
    Ptr,
    /// Unsupported pointee: the interpreter's error, pre-rendered.
    Bad(String),
    /// Out-of-range `TypeId` in a malformed image: defer to `load_typed`
    /// so the failure mode (a runtime panic) matches the interpreter.
    Deferred(TypeId),
}

/// Pre-folded `wrap_int` target width.
#[derive(Clone, Copy)]
enum WrapKind {
    Bool,
    I8,
    I16,
    I32,
    Pass,
}

impl WrapKind {
    #[inline(always)]
    fn apply(self, v: i64) -> i64 {
        match self {
            WrapKind::Bool => (v != 0) as i64,
            WrapKind::I8 => v as i8 as i64,
            WrapKind::I16 => v as i16 as i64,
            WrapKind::I32 => v as i32 as i64,
            WrapKind::Pass => v,
        }
    }
}

/// Pre-resolved direct-call target.
enum Callee {
    /// Out-of-range function id; errs after argument evaluation, exactly
    /// like the interpreter's operand-eval-then-callee-check order.
    Missing(usize),
    External { name: String, ret: TypeId },
    Internal(FuncId),
}

/// How a `Store` derives the slot (pointee) type it writes through.
enum StoreTy {
    /// Known at compile time; `None` falls back by value shape, exactly
    /// like `store_slot_type`'s default arm.
    Static(Option<TypeId>),
    /// Malformed image (id out of table range): defer to the
    /// interpreter's `store_slot_type`, panics and all.
    Deferred(Operand),
}

/// Shared compile context: the module plus its deterministic layout,
/// matching what `Vm::new` computes at load time.
struct Cx<'m> {
    m: &'m Module,
    tl: TypeLayout,
    gaddr: Vec<u64>,
    saddr: Vec<u64>,
    cost: CostModel,
    backend: Backend,
    ty_i64: TypeId,
}

impl Cx<'_> {
    fn resolve(&self, op: &Operand) -> Slot {
        match op {
            Operand::Value(v) => Slot::Reg(*v),
            Operand::ConstInt(v, _) => Slot::Imm(RtVal::I(*v)),
            Operand::ConstFloat(bits, _) => Slot::Imm(RtVal::F(f64::from_bits(*bits))),
            Operand::Null(_) => Slot::Imm(RtVal::P(0)),
            Operand::FuncAddr(fid, _) => Slot::Imm(RtVal::P(func_address(self.m, *fid))),
            Operand::GlobalAddr(gid, _) => match self.gaddr.get(gid.0 as usize) {
                Some(&a) => Slot::Imm(RtVal::P(a)),
                None => Slot::Bad("global", gid.0 as usize),
            },
            Operand::Str(sid, _) => match self.saddr.get(sid.0 as usize) {
                Some(&a) => Slot::Imm(RtVal::P(a)),
                None => Slot::Bad("string", sid.0 as usize),
            },
        }
    }

    /// Whether a `TypeId` can be looked up without panicking (malformed
    /// images carry out-of-range ids; those arms defer to the
    /// interpreter's lazy behavior instead of failing eagerly here).
    fn ty_ok(&self, ty: TypeId) -> bool {
        (ty.0 as usize) < self.m.types.len()
    }

    fn load_kind(&self, ty: TypeId) -> LoadKind {
        if !self.ty_ok(ty) {
            return LoadKind::Deferred(ty);
        }
        match self.m.types.get(ty) {
            Type::Bool | Type::I8 => LoadKind::I8,
            Type::I16 => LoadKind::I16,
            Type::I32 => LoadKind::I32,
            Type::I64 => LoadKind::I64,
            Type::F64 => LoadKind::F64,
            Type::Ptr(_) => LoadKind::Ptr,
            other => LoadKind::Bad(format!("load of unsupported type {other:?}")),
        }
    }

    fn wrap_kind(&self, ty: TypeId) -> WrapKind {
        match self.m.types.get(ty) {
            Type::Bool => WrapKind::Bool,
            Type::I8 => WrapKind::I8,
            Type::I16 => WrapKind::I16,
            Type::I32 => WrapKind::I32,
            _ => WrapKind::Pass,
        }
    }
}

/// Compiles an image's module against its cost model and enforcement
/// backend. Pure over the module — runs share the result through the
/// image's cache.
pub(crate) fn compile_module(img: &Image) -> CompiledModule {
    let m: &Module = &img.module;
    let (saddr, _) = string_addresses(m);
    let cx = Cx {
        m,
        tl: m.types.layout(),
        gaddr: m.global_addresses(),
        saddr,
        cost: img.cost,
        backend: img.backend,
        ty_i64: m.types.i64(),
    };
    let mut n_blocks = 0u64;
    // Site ids count PAC-family instructions in (func, block, inst) scan
    // order — externals have no blocks, so skipping them preserves the
    // `check_sites` numbering.
    let mut next_site = 0u32;
    let funcs = m
        .funcs
        .iter()
        .map(|f| {
            if f.is_external {
                return CompiledFunc { blocks: Vec::new() };
            }
            n_blocks += f.blocks.len() as u64;
            CompiledFunc {
                blocks: f
                    .blocks
                    .iter()
                    .enumerate()
                    .map(|(bi, b)| compile_block(&cx, f, bi, b, &mut next_site))
                    .collect(),
            }
        })
        .collect();
    CompiledModule {
        funcs,
        fingerprint: (img.cost, img.backend),
        n_blocks,
    }
}

fn compile_block(
    cx: &Cx<'_>,
    f: &Function,
    bi: usize,
    b: &BasicBlock,
    next_site: &mut u32,
) -> CompiledBlock {
    let mut ops = Vec::with_capacity(b.insts.len());
    let mut charge = Vec::with_capacity(b.insts.len());
    let mut cost_prefix = Vec::with_capacity(b.insts.len() + 1);
    let mut total = 0u64;
    cost_prefix.push(0);
    for (i, node) in b.insts.iter().enumerate() {
        let cost = cx.cost.cost(&node.inst);
        total += cost;
        cost_prefix.push(total);
        ops.push(compile_inst(cx, f, bi, &node.inst, i + 1));
        let class = opcode_class(&node.inst);
        let site = if class == OPCLASS_PAC {
            let s = *next_site;
            *next_site += 1;
            s
        } else {
            NO_SITE
        };
        charge.push(OpCharge { cost, class, site });
    }
    let term = match &b.term {
        Terminator::Br(bb) => CompiledTerm::Br(bb.0),
        Terminator::CondBr { cond, then_bb, else_bb } => match cx.resolve(cond) {
            Slot::Reg(v) => {
                CompiledTerm::CondBrReg { v, then_bb: then_bb.0, else_bb: else_bb.0 }
            }
            cond => CompiledTerm::CondBr { cond, then_bb: then_bb.0, else_bb: else_bb.0 },
        },
        t => CompiledTerm::Slow(t.clone()),
    };
    CompiledBlock { ops, charge, cost_prefix, total_cost: total, term }
}

/// Commits the frame's position so a trap's audit record reads the same
/// source line the interpreter (which commits before every instruction)
/// would report, and so a call's pushed frame knows where the caller
/// resumes. The driver does not touch the frame on straight-line block
/// transfers, so committing closures must write the block index too.
#[cold]
#[inline(never)]
fn commit_pos(vm: &mut Vm<'_>, block: usize, next_idx: usize) {
    let fr = vm.frames.last_mut().expect("active frame");
    fr.block = block;
    fr.idx = next_idx;
}

/// Compiles one instruction into a closure. `bi` is the index of the
/// block holding it; `next_idx` is the index the interpreter would have
/// committed before executing it (its position plus one): calls store
/// both as the caller's resume point, and audit traps store them for
/// line diagnostics.
fn compile_inst(cx: &Cx<'_>, f: &Function, bi: usize, inst: &Inst, next_idx: usize) -> OpFn {
    let mac = cx.backend == Backend::MacTable;
    match inst {
        Inst::Alloca { result, ty, var } => {
            let (result, ty, var) = (*result, *ty, *var);
            let size = cx
                .ty_ok(ty)
                .then(|| cx.tl.size_of(ty).max(1).div_ceil(8).saturating_mul(8));
            Box::new(move |vm| {
                let fr = vm.frames.last().expect("frame");
                let (tag, cached) =
                    fr.alloca_cache.get(result.0 as usize).copied().unwrap_or((0, 0));
                if tag == fr.gen {
                    vm.set(result, RtVal::P(cached));
                    return Control::Next;
                }
                // The malformed-image arm reproduces the interpreter's
                // lazy layout lookup (and its panic).
                let size = size
                    .unwrap_or_else(|| vm.tl.size_of(ty).max(1).div_ceil(8).saturating_mul(8));
                let addr = vm.stack_top;
                if addr
                    .checked_add(size)
                    .is_none_or(|end| end >= layout::STACK_BASE + vm.img.stack_size)
                {
                    return Control::Trap(Box::new(Trap::StackOverflow));
                }
                vm.stack_top += size;
                tri!(vm.mem.write_zeros(addr, size).map_err(|e| vm.mem_err(e)));
                let fr = vm.frames.last_mut().expect("frame");
                if result.0 as usize >= fr.alloca_cache.len() {
                    grow_slots(&mut fr.alloca_cache, result.0 as usize, (0, 0));
                }
                fr.alloca_cache[result.0 as usize] = (fr.gen, addr);
                if let Some(v) = var {
                    fr.locals.push((v, addr));
                }
                vm.set(result, RtVal::P(addr));
                Control::Next
            })
        }
        Inst::Load { result, ptr, ty } => {
            let result = *result;
            let ptr = cx.resolve(ptr);
            let kind = cx.load_kind(*ty);
            let track = mac && cx.ty_ok(*ty) && cx.m.types.is_ptr(*ty);
            // One closure per width (and per pointer-operand kind), so the
            // executed path is ptr read -> canonicalize -> one fixed-width
            // memory read -> register write, with no dispatch left.
            dispatch1!(ptr, |ps| {
                macro_rules! load_c {
                    (|$vm:ident, $addr:ident| $body:expr) => {
                        Box::new(move |$vm: &mut Vm<'_>| {
                            let p = tri!($vm.as_ptr(tri!(ps.get($vm))));
                            let $addr = tri!($vm.deref_addr(p));
                            let v = $body;
                            if track {
                                $vm.last_ptr_load = Some($addr);
                            }
                            $vm.set(result, v);
                            Control::Next
                        })
                    };
                }
                match kind {
                    LoadKind::I8 => load_c!(|vm, addr| {
                        let b = tri!(vm.mem.read_arr::<1>(addr).map_err(|e| vm.mem_err(e)));
                        RtVal::I(b[0] as i8 as i64)
                    }),
                    LoadKind::I16 => load_c!(|vm, addr| {
                        let b = tri!(vm.mem.read_arr::<2>(addr).map_err(|e| vm.mem_err(e)));
                        RtVal::I(i16::from_le_bytes(b) as i64)
                    }),
                    LoadKind::I32 => load_c!(|vm, addr| {
                        let b = tri!(vm.mem.read_arr::<4>(addr).map_err(|e| vm.mem_err(e)));
                        RtVal::I(i32::from_le_bytes(b) as i64)
                    }),
                    LoadKind::I64 => load_c!(|vm, addr| {
                        let b = tri!(vm.mem.read_arr::<8>(addr).map_err(|e| vm.mem_err(e)));
                        RtVal::I(i64::from_le_bytes(b))
                    }),
                    LoadKind::F64 => load_c!(|vm, addr| {
                        let b = tri!(vm.mem.read_arr::<8>(addr).map_err(|e| vm.mem_err(e)));
                        RtVal::F(f64::from_le_bytes(b))
                    }),
                    // Written out (not via `load_c!`) for the recorder
                    // hook: a load through a pointer-typed slot is a
                    // lifecycle event the interpreter records too.
                    LoadKind::Ptr => Box::new(move |vm: &mut Vm<'_>| {
                        let p = tri!(vm.as_ptr(tri!(ps.get(vm))));
                        let addr = tri!(vm.deref_addr(p));
                        let b = tri!(vm.mem.read_arr::<8>(addr).map_err(|e| vm.mem_err(e)));
                        let bits = u64::from_le_bytes(b);
                        if track {
                            vm.last_ptr_load = Some(addr);
                        }
                        if vm.rec.is_some() {
                            vm.rec_plain(RecKind::Load, addr, bits);
                        }
                        vm.set(result, RtVal::P(bits));
                        Control::Next
                    }),
                    // The interpreter reaches the unsupported-type error
                    // only after the pointer itself resolved, so the bad
                    // arm still evaluates and canonicalizes it first.
                    LoadKind::Bad(msg) => Box::new(move |vm: &mut Vm<'_>| {
                        let p = tri!(vm.as_ptr(tri!(ps.get(vm))));
                        tri!(vm.deref_addr(p));
                        Control::Trap(Box::new(Trap::BadProgram(msg.clone())))
                    }),
                    LoadKind::Deferred(ty) => {
                        load_c!(|vm, addr| tri!(vm.load_typed(addr, ty)))
                    }
                }
            })
        }
        Inst::Store { value, ptr } => {
            let value_s = cx.resolve(value);
            let ptr_s = cx.resolve(ptr);
            let sty = match ptr {
                Operand::Value(v) if (v.0 as usize) < f.value_types.len() => {
                    let p = f.value_type(*v);
                    if cx.ty_ok(p) {
                        StoreTy::Static(cx.m.types.pointee(p))
                    } else {
                        StoreTy::Deferred(ptr.clone())
                    }
                }
                Operand::Value(_) => StoreTy::Deferred(ptr.clone()),
                Operand::GlobalAddr(_, t) | Operand::Null(t) | Operand::Str(_, t) => {
                    if cx.ty_ok(*t) {
                        StoreTy::Static(cx.m.types.pointee(*t))
                    } else {
                        StoreTy::Deferred(ptr.clone())
                    }
                }
                _ => StoreTy::Static(None),
            };
            let ty_i64 = cx.ty_i64;
            // One closure per pre-decided slot-type source and width (and
            // per operand-kind combination, via `dispatch2!`), so the hot
            // (statically-typed) stores carry neither the slot-type
            // derivation nor `store_typed`'s width match. The
            // shape-mismatch arms defer to `store_typed` itself, which
            // owns the error text (and the conversions, for F64).
            dispatch2!(value_s, ptr_s, |vs, ps| {
                // The shared prologue: value read, pointer read +
                // canonicalize, and the MAC handoff, in the interpreter's
                // order.
                macro_rules! prologue {
                    ($vm:ident, $v:ident, $addr:ident) => {
                        let $v = tri!(vs.get($vm));
                        let p = tri!($vm.as_ptr(tri!(ps.get($vm))));
                        let $addr = tri!($vm.deref_addr(p));
                        if mac {
                            if let Some(m) = $vm.pending_mac.take() {
                                $vm.mac_table.insert($addr, m);
                            }
                        }
                    };
                }
                macro_rules! store_c {
                    ($ty:expr, $pat:pat => $bytes:expr) => {{
                        let ty = $ty;
                        Box::new(move |vm: &mut Vm<'_>| {
                            prologue!(vm, v, addr);
                            match v {
                                $pat => {
                                    tri!(vm.mem.write_arr(addr, $bytes).map_err(|e| vm.mem_err(e)))
                                }
                                other => tri!(vm.store_typed(addr, ty, other)),
                            }
                            Control::Next
                        })
                    }};
                }
                match sty {
                    StoreTy::Static(Some(ty)) => match cx.m.types.get(ty) {
                        Type::Bool | Type::I8 => store_c!(ty, RtVal::I(i) => [i as u8]),
                        Type::I16 => store_c!(ty, RtVal::I(i) => (i as i16).to_le_bytes()),
                        Type::I32 => store_c!(ty, RtVal::I(i) => (i as i32).to_le_bytes()),
                        Type::I64 => store_c!(ty, RtVal::I(i) => i.to_le_bytes()),
                        Type::F64 => Box::new(move |vm: &mut Vm<'_>| {
                            prologue!(vm, v, addr);
                            let f = match v {
                                RtVal::F(f) => f,
                                RtVal::I(i) => i as f64,
                                other => {
                                    tri!(vm.store_typed(addr, ty, other));
                                    return Control::Next;
                                }
                            };
                            tri!(vm
                                .mem
                                .write_arr(addr, f.to_le_bytes())
                                .map_err(|e| vm.mem_err(e)));
                            Control::Next
                        }),
                        Type::Ptr(_) => Box::new(move |vm: &mut Vm<'_>| {
                            prologue!(vm, v, addr);
                            let pv = tri!(vm.as_ptr(v));
                            tri!(vm
                                .mem
                                .write_arr(addr, pv.to_le_bytes())
                                .map_err(|e| vm.mem_err(e)));
                            // Mirrors `store_typed`'s ptr-slot recorder
                            // event (this closure inlines that arm).
                            if vm.rec.is_some() {
                                vm.rec_plain(RecKind::Store, addr, pv);
                            }
                            Control::Next
                        }),
                        // Unsupported slot type: `store_typed`'s error,
                        // lazily.
                        _ => Box::new(move |vm: &mut Vm<'_>| {
                            prologue!(vm, v, addr);
                            tri!(vm.store_typed(addr, ty, v));
                            Control::Next
                        }),
                    },
                    StoreTy::Static(None) => Box::new(move |vm: &mut Vm<'_>| {
                        prologue!(vm, v, addr);
                        // Shape-derived slot type (`store_slot_type`'s
                        // default arm): I and F write their natural width;
                        // P derives i64 and lets `store_typed` produce the
                        // mismatch error.
                        match v {
                            RtVal::I(i) => tri!(vm
                                .mem
                                .write_arr(addr, i.to_le_bytes())
                                .map_err(|e| vm.mem_err(e))),
                            RtVal::F(f) => tri!(vm
                                .mem
                                .write_arr(addr, f.to_le_bytes())
                                .map_err(|e| vm.mem_err(e))),
                            other => tri!(vm.store_typed(addr, ty_i64, other)),
                        }
                        Control::Next
                    }),
                    StoreTy::Deferred(op) => Box::new(move |vm: &mut Vm<'_>| {
                        prologue!(vm, v, addr);
                        let ty = vm.store_slot_type(&op, v);
                        tri!(vm.store_typed(addr, ty, v));
                        Control::Next
                    }),
                }
            })
        }
        Inst::FieldAddr { result, base, struct_id, field } => {
            let result = *result;
            let base = cx.resolve(base);
            let (struct_id, field) = (*struct_id, *field);
            let in_range = (struct_id.0 as usize) < cx.m.types.struct_count()
                && field < cx.m.types.struct_def(struct_id).fields.len();
            let off = in_range.then(|| cx.tl.field_offset(struct_id, field));
            match off {
                Some(off) => dispatch1!(base, |bs| {
                    Box::new(move |vm: &mut Vm<'_>| {
                        let b = tri!(vm.as_ptr(tri!(bs.get(vm))));
                        vm.set(result, RtVal::P(b.wrapping_add(off)));
                        Control::Next
                    })
                }),
                // Malformed image: the interpreter's lazy lookup, panic
                // included.
                None => Box::new(move |vm| {
                    let b = tri!(base.read_ptr(vm));
                    let off = vm.tl.field_offset(struct_id, field);
                    vm.set(result, RtVal::P(b.wrapping_add(off)));
                    Control::Next
                }),
            }
        }
        Inst::IndexAddr { result, base, index, elem_ty } => {
            let result = *result;
            let base = cx.resolve(base);
            let index = cx.resolve(index);
            let elem_ty = *elem_ty;
            let sz = cx.ty_ok(elem_ty).then(|| cx.tl.size_of(elem_ty).max(1) as i64);
            match sz {
                Some(sz) => dispatch2!(base, index, |bs, is| {
                    Box::new(move |vm: &mut Vm<'_>| {
                        let b = tri!(vm.as_ptr(tri!(bs.get(vm))));
                        let i = match tri!(is.get(vm)) {
                            RtVal::I(i) => i,
                            RtVal::P(p) => p as i64,
                            RtVal::F(_) => {
                                return Control::Trap(Box::new(Trap::BadProgram(
                                    "float index".into(),
                                )))
                            }
                        };
                        vm.set(result, RtVal::P(b.wrapping_add(i.wrapping_mul(sz) as u64)));
                        Control::Next
                    })
                }),
                None => Box::new(move |vm| {
                    let b = tri!(base.read_ptr(vm));
                    let i = match tri!(index.read(vm)) {
                        RtVal::I(i) => i,
                        RtVal::P(p) => p as i64,
                        RtVal::F(_) => {
                            return Control::Trap(Box::new(Trap::BadProgram("float index".into())))
                        }
                    };
                    let sz = vm.tl.size_of(elem_ty).max(1) as i64;
                    vm.set(result, RtVal::P(b.wrapping_add(i.wrapping_mul(sz) as u64)));
                    Control::Next
                }),
            }
        }
        Inst::BitCast { result, value, .. } => {
            let result = *result;
            let value = cx.resolve(value);
            dispatch1!(value, |vs| {
                Box::new(move |vm: &mut Vm<'_>| {
                    let v = tri!(vs.get(vm));
                    vm.set(result, v);
                    Control::Next
                })
            })
        }
        Inst::Convert { result, value, to } => {
            let result = *result;
            let value = cx.resolve(value);
            let to = *to;
            // (to_f64, wrap target), or defer the lookup for a malformed id.
            let kind = cx
                .ty_ok(to)
                .then(|| (matches!(cx.m.types.get(to), Type::F64), cx.wrap_kind(to)));
            match kind {
                Some((to_f64, wk)) => dispatch1!(value, |vs| {
                    Box::new(move |vm: &mut Vm<'_>| {
                        let v = tri!(vs.get(vm));
                        let out = match (v, to_f64) {
                            (RtVal::I(i), true) => RtVal::F(i as f64),
                            (RtVal::F(fv), true) => RtVal::F(fv),
                            (RtVal::F(fv), false) => RtVal::I(wk.apply(fv as i64)),
                            (RtVal::I(i), false) => RtVal::I(wk.apply(i)),
                            (RtVal::P(p), _) => RtVal::I(wk.apply(p as i64)),
                        };
                        vm.set(result, out);
                        Control::Next
                    })
                }),
                // Malformed image: the interpreter's lazy table lookup,
                // panic included.
                None => Box::new(move |vm| {
                    let v = tri!(value.read(vm));
                    let out = match (v, vm.img.module.types.get(to)) {
                        (RtVal::I(i), Type::F64) => RtVal::F(i as f64),
                        (RtVal::F(fv), Type::F64) => RtVal::F(fv),
                        (RtVal::F(fv), _) => RtVal::I(wrap_int(&vm.img.module, to, fv as i64)),
                        (RtVal::I(i), _) => RtVal::I(wrap_int(&vm.img.module, to, i)),
                        (RtVal::P(p), _) => RtVal::I(wrap_int(&vm.img.module, to, p as i64)),
                    };
                    vm.set(result, out);
                    Control::Next
                }),
            }
        }
        Inst::Bin { result, op, lhs, rhs, ty } => {
            let (result, op, ty) = (*result, *op, *ty);
            let lhs = cx.resolve(lhs);
            let rhs = cx.resolve(rhs);
            // Malformed `ty`, float ops, and bitwise-on-float defer to the
            // interpreter's `binop`, which owns the trap order (lhs
            // coercion errors before rhs, both before "bitwise op on
            // float") and the out-of-range-id panic.
            if !cx.ty_ok(ty) {
                return Box::new(move |vm| {
                    let a = tri!(lhs.read(vm));
                    let b = tri!(rhs.read(vm));
                    let out = tri!(vm.binop(op, a, b, ty));
                    vm.set(result, out);
                    Control::Next
                });
            }
            if matches!(cx.m.types.get(ty), Type::F64) {
                return dispatch2!(lhs, rhs, |a, b| {
                    macro_rules! fbin {
                        ($f:expr) => {
                            Box::new(move |vm: &mut Vm<'_>| {
                                let fa = tri!(float_of(tri!(a.get(vm))));
                                let fb = tri!(float_of(tri!(b.get(vm))));
                                let f: fn(f64, f64) -> f64 = $f;
                                vm.set(result, RtVal::F(f(fa, fb)));
                                Control::Next
                            })
                        };
                    }
                    match op {
                        BinOp::Add => fbin!(|x, y| x + y),
                        BinOp::Sub => fbin!(|x, y| x - y),
                        BinOp::Mul => fbin!(|x, y| x * y),
                        BinOp::Div => fbin!(|x, y| x / y),
                        BinOp::Rem => fbin!(|x, y| x % y),
                        _ => Box::new(move |vm: &mut Vm<'_>| {
                            let av = tri!(a.get(vm));
                            let bv = tri!(b.get(vm));
                            let out = tri!(vm.binop(op, av, bv, ty));
                            vm.set(result, out);
                            Control::Next
                        }),
                    }
                });
            }
            let wk = cx.wrap_kind(ty);
            dispatch2!(lhs, rhs, |a, b| {
                macro_rules! ibin {
                    ($f:expr) => {
                        Box::new(move |vm: &mut Vm<'_>| {
                            let ia = int_of(tri!(a.get(vm)));
                            let ib = int_of(tri!(b.get(vm)));
                            let f: fn(i64, i64) -> i64 = $f;
                            vm.set(result, RtVal::I(wk.apply(f(ia, ib))));
                            Control::Next
                        })
                    };
                }
                macro_rules! idiv {
                    ($f:expr) => {
                        Box::new(move |vm: &mut Vm<'_>| {
                            let ia = int_of(tri!(a.get(vm)));
                            let ib = int_of(tri!(b.get(vm)));
                            if ib == 0 {
                                return Control::Trap(Box::new(Trap::DivByZero {
                                    func: vm.cur_func_name(),
                                }));
                            }
                            let f: fn(i64, i64) -> i64 = $f;
                            vm.set(result, RtVal::I(wk.apply(f(ia, ib))));
                            Control::Next
                        })
                    };
                }
                match op {
                    BinOp::Add => ibin!(|x, y| x.wrapping_add(y)),
                    BinOp::Sub => ibin!(|x, y| x.wrapping_sub(y)),
                    BinOp::Mul => ibin!(|x, y| x.wrapping_mul(y)),
                    BinOp::Div => idiv!(|x, y| x.wrapping_div(y)),
                    BinOp::Rem => idiv!(|x, y| x.wrapping_rem(y)),
                    BinOp::And => ibin!(|x, y| x & y),
                    BinOp::Or => ibin!(|x, y| x | y),
                    BinOp::Xor => ibin!(|x, y| x ^ y),
                    BinOp::Shl => ibin!(|x, y| x.wrapping_shl(y as u32 & 63)),
                    BinOp::Shr => ibin!(|x, y| x.wrapping_shr(y as u32 & 63)),
                }
            })
        }
        Inst::Cmp { result, op, lhs, rhs } => {
            let (result, op) = (*result, *op);
            let lhs = cx.resolve(lhs);
            let rhs = cx.resolve(rhs);
            // One closure per comparison op over the shared `ord_vals`,
            // so the op match disappears from the hot path.
            dispatch2!(lhs, rhs, |a, b| {
                macro_rules! cbin {
                    ($t:expr) => {
                        Box::new(move |vm: &mut Vm<'_>| {
                            let av = tri!(a.get(vm));
                            let bv = tri!(b.get(vm));
                            let t: fn(Ordering) -> bool = $t;
                            vm.set(result, RtVal::I(t(ord_vals(av, bv)) as i64));
                            Control::Next
                        })
                    };
                }
                match op {
                    CmpOp::Eq => cbin!(|o| o == Ordering::Equal),
                    CmpOp::Ne => cbin!(|o| o != Ordering::Equal),
                    CmpOp::Lt => cbin!(|o| o == Ordering::Less),
                    CmpOp::Le => cbin!(|o| o != Ordering::Greater),
                    CmpOp::Gt => cbin!(|o| o == Ordering::Greater),
                    CmpOp::Ge => cbin!(|o| o != Ordering::Less),
                }
            })
        }
        Inst::Call { result, callee, args } => {
            let result = *result;
            let args: Vec<Slot> = args.iter().map(|a| cx.resolve(a)).collect();
            let kind = match cx.m.funcs.get(callee.0 as usize) {
                None => Callee::Missing(callee.0 as usize),
                Some(cf) if cf.is_external => {
                    Callee::External { name: cf.name.clone(), ret: cf.sig.ret }
                }
                Some(_) => Callee::Internal(*callee),
            };
            Box::new(move |vm| {
                let mut argv = std::mem::take(&mut vm.call_args);
                argv.clear();
                for a in &args {
                    match a.read(vm) {
                        Ok(v) => argv.push(v),
                        Err(e) => {
                            vm.call_args = argv;
                            return Control::Trap(Box::new(e));
                        }
                    }
                }
                let r = match &kind {
                    Callee::Missing(i) => Control::Trap(Box::new(oob("function", *i))),
                    Callee::External { name, ret } => {
                        let v = vm.external_call(name, &argv, *ret);
                        if let (Some(rr), Some(v)) = (result, v) {
                            vm.set(rr, v);
                        }
                        Control::Next
                    }
                    Callee::Internal(fid) => {
                        // The caller resumes after this instruction.
                        commit_pos(vm, bi, next_idx);
                        match vm.push_frame(*fid, &argv, result) {
                            Ok(()) => Control::Transfer,
                            Err(t) => Control::Trap(Box::new(t)),
                        }
                    }
                };
                vm.call_args = argv;
                r
            })
        }
        Inst::CallIndirect { result, callee, args, sig } => {
            let result = *result;
            let callee = cx.resolve(callee);
            let args: Vec<Slot> = args.iter().map(|a| cx.resolve(a)).collect();
            let ret = sig.ret;
            Box::new(move |vm| {
                let p = tri!(callee.read_ptr(vm));
                if !vm.img.va.is_canonical(p) {
                    return Control::Trap(Box::new(Trap::NonCanonicalCall {
                        func: vm.cur_func_name(),
                        ptr: p,
                    }));
                }
                let target = vm.img.va.canonical(p);
                let Some((fid, external)) = resolve_code_addr(&vm.img.module, target) else {
                    return Control::Trap(Box::new(Trap::CallNonFunction {
                        func: vm.cur_func_name(),
                        target,
                    }));
                };
                let mut argv = std::mem::take(&mut vm.call_args);
                argv.clear();
                for a in &args {
                    match a.read(vm) {
                        Ok(v) => argv.push(v),
                        Err(e) => {
                            vm.call_args = argv;
                            return Control::Trap(Box::new(e));
                        }
                    }
                }
                let r = if external {
                    let name = vm.img.module.funcs[fid.0 as usize].name.clone();
                    let v = vm.external_call(&name, &argv, ret);
                    if let (Some(rr), Some(v)) = (result, v) {
                        vm.set(rr, v);
                    }
                    Control::Next
                } else {
                    commit_pos(vm, bi, next_idx);
                    match vm.push_frame(fid, &argv, result) {
                        Ok(()) => Control::Transfer,
                        Err(t) => Control::Trap(Box::new(t)),
                    }
                };
                vm.call_args = argv;
                r
            })
        }
        Inst::Malloc { result, size, .. } => {
            let result = *result;
            let size = cx.resolve(size);
            Box::new(move |vm| {
                let sz = match tri!(size.read(vm)) {
                    RtVal::I(i) => i.max(0) as u64,
                    RtVal::P(p) => p,
                    RtVal::F(_) => {
                        return Control::Trap(Box::new(Trap::BadProgram(
                            "float malloc size".into(),
                        )))
                    }
                };
                let addr = tri!(vm.alloc.malloc(sz).ok_or(Trap::HeapExhausted));
                vm.set(result, RtVal::P(addr));
                Control::Next
            })
        }
        Inst::Free { ptr } => {
            let ptr = cx.resolve(ptr);
            Box::new(move |vm| {
                let p = tri!(ptr.read_ptr(vm));
                let a = vm.img.va.canonical(p);
                if vm.rec.is_some() {
                    vm.rec_plain(RecKind::Free, a, p);
                }
                if a != 0 && !vm.alloc.free(a) {
                    vm.events.push(ExtEvent {
                        name: "invalid_free".into(),
                        args: vec![format!("{a:#x}")],
                        critical: false,
                    });
                }
                Control::Next
            })
        }
        Inst::PrintInt { value } => {
            let value = cx.resolve(value);
            Box::new(move |vm| {
                let v = tri!(value.read(vm));
                vm.output.push(v.to_string());
                Control::Next
            })
        }
        Inst::PrintStr { s } => {
            let text = cx.m.strings.get(s.0 as usize).cloned();
            let idx = s.0 as usize;
            Box::new(move |vm| {
                let Some(text) = &text else {
                    return Control::Trap(Box::new(oob("string", idx)));
                };
                vm.output.push(text.clone());
                Control::Next
            })
        }
        Inst::PacSign { result, value, key, modifier, loc, site } => {
            let result = *result;
            let value = cx.resolve(value);
            let key = key_id(*key);
            let modifier = *modifier;
            let loc = loc.as_ref().map(|l| cx.resolve(l));
            let si = site_index(*site);
            Box::new(move |vm| {
                vm.site_counts[si] += 1;
                let p = tri!(value.read_ptr(vm));
                let modifier = match &loc {
                    None => modifier,
                    Some(l) => modifier ^ vm.img.va.canonical(tri!(l.read_ptr(vm))),
                };
                if !mac {
                    let signed = vm.pac.sign(key, p, modifier);
                    if vm.rec.is_some() {
                        vm.rec_push(RecKind::Sign, signed, modifier, key_code(key));
                    }
                    vm.set(result, RtVal::P(signed));
                } else {
                    vm.pac.sign_count += 1;
                    let macv = vm.pac.compute_pac(key, p, modifier);
                    vm.pending_mac = Some(macv);
                    if vm.rec.is_some() {
                        vm.rec_push(RecKind::Sign, p, modifier, key_code(key));
                    }
                    vm.set(result, RtVal::P(p));
                }
                Control::Next
            })
        }
        Inst::PacAuth { result, value, key, modifier, loc, site } => {
            let result = *result;
            let value = cx.resolve(value);
            let key = key_id(*key);
            let modifier = *modifier;
            let loc = loc.as_ref().map(|l| cx.resolve(l));
            let site = *site;
            let si = site_index(site);
            Box::new(move |vm| {
                vm.site_counts[si] += 1;
                let p = tri!(value.read_ptr(vm));
                let modifier = match &loc {
                    None => modifier,
                    Some(l) => modifier ^ vm.img.va.canonical(tri!(l.read_ptr(vm))),
                };
                if !mac {
                    match vm.pac.auth(key, p, modifier) {
                        Ok(clean) => {
                            if vm.rec.is_some() {
                                vm.rec_push(RecKind::Auth, p, modifier, key_code(key));
                            }
                            vm.set(result, RtVal::P(clean));
                            Control::Next
                        }
                        Err(e) => {
                            commit_pos(vm, bi, next_idx);
                            Control::Trap(Box::new(vm.pac_auth_fail(
                                "pac_auth",
                                site,
                                modifier,
                                e.found_pac,
                                e.expected_pac,
                                p,
                                key_code(key),
                            )))
                        }
                    }
                } else {
                    vm.pac.auth_count += 1;
                    let expected = vm.pac.compute_pac(key, p, modifier);
                    if let Some(macv) = vm.pending_mac.take() {
                        if macv == expected {
                            if vm.rec.is_some() {
                                vm.rec_push(RecKind::Auth, p, modifier, key_code(key));
                            }
                            vm.set(result, RtVal::P(p));
                            return Control::Next;
                        }
                    } else if let Some(slot) = vm.last_ptr_load {
                        if vm.mac_table.get(&slot) == Some(&expected) {
                            if vm.rec.is_some() {
                                vm.rec_push(RecKind::Auth, p, modifier, key_code(key));
                            }
                            vm.set(result, RtVal::P(p));
                            return Control::Next;
                        }
                    }
                    vm.pac.fail_count += 1;
                    commit_pos(vm, bi, next_idx);
                    Control::Trap(Box::new(vm.mac_stale_fail(
                        "pac_auth",
                        site,
                        modifier,
                        expected,
                        p,
                        key_code(key),
                    )))
                }
            })
        }
        Inst::PacStrip { result, value } => {
            let result = *result;
            let value = cx.resolve(value);
            let si = site_index(PacSite::ExternalStrip);
            Box::new(move |vm| {
                vm.site_counts[si] += 1;
                let p = tri!(value.read_ptr(vm));
                let stripped = vm.pac.strip(p);
                if vm.rec.is_some() {
                    vm.rec_push(RecKind::Strip, p, 0, KEY_NONE);
                }
                vm.set(result, RtVal::P(stripped));
                Control::Next
            })
        }
        Inst::PpAdd { ce, fe_modifier } => {
            let (ce, fe) = (*ce, *fe_modifier);
            Box::new(move |vm| match vm.pp_table.get(&ce) {
                Some(&had) if had != fe => {
                    commit_pos(vm, bi, next_idx);
                    Control::Trap(Box::new(vm.pp_fail(
                        "pp_add",
                        fe,
                        PpFail::Conflict { ce: ce as u64, had },
                        0,
                        KEY_NONE,
                    )))
                }
                _ => {
                    vm.pp_table.insert(ce, fe);
                    Control::Next
                }
            })
        }
        Inst::PpSign { result, value, ce, key } => {
            let result = *result;
            let value = cx.resolve(value);
            let ce = *ce;
            let key = key_id(*key);
            Box::new(move |vm| {
                let p = tri!(value.read_ptr(vm));
                let fe = match vm.pp_table.get(&ce) {
                    Some(&fe) => fe,
                    None => {
                        commit_pos(vm, bi, next_idx);
                        return Control::Trap(Box::new(vm.pp_fail(
                            "pp_sign",
                            ce as u64,
                            PpFail::NotRegistered { ce: ce as u64 },
                            p,
                            key_code(key),
                        )));
                    }
                };
                if !mac {
                    let signed = vm.pac.sign(key, p, fe);
                    if vm.rec.is_some() {
                        vm.rec_push(RecKind::Sign, signed, fe, key_code(key));
                    }
                    vm.set(result, RtVal::P(signed));
                } else {
                    vm.pac.sign_count += 1;
                    vm.pending_mac = Some(vm.pac.compute_pac(key, p, fe));
                    if vm.rec.is_some() {
                        vm.rec_push(RecKind::Sign, p, fe, key_code(key));
                    }
                    vm.set(result, RtVal::P(p));
                }
                Control::Next
            })
        }
        Inst::PpAddTbi { result, value, ce } => {
            let result = *result;
            let value = cx.resolve(value);
            let ce = *ce;
            Box::new(move |vm| {
                let p = tri!(value.read_ptr(vm));
                let tagged = vm.img.va.with_tbi_tag(p, ce);
                vm.set(result, RtVal::P(tagged));
                Control::Next
            })
        }
        Inst::PpAuth { result, value, key } => {
            let result = *result;
            let value = cx.resolve(value);
            let key = key_id(*key);
            Box::new(move |vm| {
                let p = tri!(value.read_ptr(vm));
                let ce = vm.img.va.tbi_tag(p);
                if ce == 0 {
                    commit_pos(vm, bi, next_idx);
                    return Control::Trap(Box::new(vm.pp_fail(
                        "pp_auth",
                        0,
                        PpFail::MissingTag,
                        p,
                        key_code(key),
                    )));
                }
                let fe = match vm.pp_table.get(&ce) {
                    Some(&fe) => fe,
                    None => {
                        commit_pos(vm, bi, next_idx);
                        return Control::Trap(Box::new(vm.pp_fail(
                            "pp_auth",
                            ce as u64,
                            PpFail::NotInStore { ce: ce as u64 },
                            p,
                            key_code(key),
                        )));
                    }
                };
                let untagged = vm.img.va.clear_tbi(p);
                if !mac {
                    match vm.pac.auth(key, untagged, fe) {
                        Ok(clean) => {
                            if vm.rec.is_some() {
                                vm.rec_push(RecKind::Auth, untagged, fe, key_code(key));
                            }
                            vm.set(result, RtVal::P(clean));
                            Control::Next
                        }
                        Err(e) => {
                            commit_pos(vm, bi, next_idx);
                            Control::Trap(Box::new(vm.pac_auth_fail(
                                "pp_auth",
                                PacSite::OnLoad,
                                fe,
                                e.found_pac,
                                e.expected_pac,
                                untagged,
                                key_code(key),
                            )))
                        }
                    }
                } else {
                    vm.pac.auth_count += 1;
                    let expected = vm.pac.compute_pac(key, untagged, fe);
                    let ok = match (vm.pending_mac.take(), vm.last_ptr_load) {
                        (Some(macv), _) => macv == expected,
                        (None, Some(slot)) => vm.mac_table.get(&slot) == Some(&expected),
                        _ => false,
                    };
                    if ok {
                        if vm.rec.is_some() {
                            vm.rec_push(RecKind::Auth, untagged, fe, key_code(key));
                        }
                        vm.set(result, RtVal::P(untagged));
                        Control::Next
                    } else {
                        vm.pac.fail_count += 1;
                        commit_pos(vm, bi, next_idx);
                        Control::Trap(Box::new(vm.mac_stale_fail(
                            "pp_auth",
                            PacSite::OnLoad,
                            fe,
                            expected,
                            untagged,
                            key_code(key),
                        )))
                    }
                }
            })
        }
    }
}

impl<'img> Vm<'img> {
    /// The compiled-engine driver: the counterpart of `run_internal`,
    /// with identical watchpoint-pause semantics.
    pub(crate) fn run_compiled(&mut self, watch: Option<FuncId>) {
        let code = self.img.compiled();
        let _span = rsti_telemetry::global().span(Phase::VmRun);
        let mut skip_check = std::mem::take(&mut self.paused);
        let Some(w) = watch else {
            // No watchpoint (the measurement path): direct-threaded
            // block execution with no per-block entry check.
            while self.status.is_none() {
                if let Err(t) = self.exec_compiled(&code, false) {
                    self.status = Some(Status::Trapped(t));
                }
            }
            self.flush_telemetry();
            return;
        };
        while self.status.is_none() {
            if !skip_check {
                if let Some(fr) = self.frames.last() {
                    if fr.func == w && fr.block == 0 && fr.idx == 0 {
                        self.paused = true;
                        return; // paused at function entry
                    }
                }
            }
            skip_check = false;
            // One block per dispatch: the pause check above must see
            // every block entry, exactly like the interpreter's
            // step-per-dispatch loop.
            if let Err(t) = self.exec_compiled(&code, true) {
                self.status = Some(Status::Trapped(t));
            }
        }
        self.flush_telemetry();
    }

    /// Executes compiled blocks from the current frame position until
    /// control leaves the frame (call push, return, exit) or — with
    /// `single_block` — the first block transfer.
    fn exec_compiled(&mut self, code: &CompiledModule, single_block: bool) -> Result<(), Trap> {
        let depth = self.frames.len();
        let fr = self.frames.last().expect("active frame");
        let mut func = fr.func.0 as usize;
        let mut block = fr.block;
        let mut idx = fr.idx;
        // The block table changes only when the frame does (the `Slow`
        // arm), so resolve it per function, not per block.
        let mut fblocks = &code.funcs[func].blocks;
        let branch_cost = self.img.cost.branch;
        // Loop-invariant driver state lives in registers: telemetry
        // tracing and attribution cannot toggle mid-run, and the fuel
        // headroom only needs re-deriving after a slow path charges per
        // op. Attribution forces the per-op slow path: it needs the
        // interpreter's exact charge order (the fast path pre-charges
        // whole blocks), and that is what makes the two engines attribute
        // identically.
        let trace = self.trace_enabled;
        // The flight recorder needs the same per-op treatment as
        // attribution: events carry model-cycle timestamps, and only the
        // slow path charges cycles in the interpreter's order.
        let obs_on = self.attr.is_some() || self.rec.is_some();
        let mut budget = self.fuel.saturating_sub(self.insts);
        loop {
            let Some(cb) = fblocks.get(block) else {
                let name = &self.img.module.funcs[func].name;
                return Err(missing_block(block, name));
            };
            let n = cb.ops.len();
            let remaining = (n - idx) as u64 + 1;
            if !trace && !obs_on && remaining <= budget {
                // Fast path: charge the whole straight-line run *and the
                // terminator* up front (cycle prefix sums), roll back the
                // unexecuted suffix on any early exit. Totals match per-op
                // charging exactly: the entry condition guarantees the
                // interpreter's per-transfer fuel check could not have
                // fired anywhere in this block either.
                budget -= remaining;
                self.insts += remaining;
                // `idx == 0` on every transfer except a call resume: the
                // whole-block cost sits in the block header, sparing the
                // prefix-sum indexing on the common path.
                self.cycles += branch_cost
                    + if idx == 0 {
                        cb.total_cost
                    } else {
                        cb.cost_prefix[n] - cb.cost_prefix[idx]
                    };
                let mut j = idx;
                for op in &cb.ops[idx..] {
                    match op(self) {
                        Control::Next => j += 1,
                        Control::Transfer => {
                            self.rollback_suffix(cb, j, n, branch_cost);
                            return Ok(());
                        }
                        Control::Trap(t) => {
                            self.rollback_suffix(cb, j, n, branch_cost);
                            return Err(*t);
                        }
                    }
                }
            } else {
                if !self.exec_block_slow(cb, idx)? {
                    return Ok(());
                }
                budget = self.fuel.saturating_sub(self.insts);
            }
            match &cb.term {
                CompiledTerm::Br(bb) => block = *bb as usize,
                CompiledTerm::CondBrReg { v, then_bb, else_bb } => {
                    let Some(&(tag, val)) = self.regs.get(self.reg_base + v.0 as usize) else {
                        return Err(oob("register", v.0 as usize));
                    };
                    if tag != self.cur_gen {
                        return Err(undefined_use(*v));
                    }
                    let taken = match val {
                        RtVal::I(v) => v != 0,
                        RtVal::P(p) => p != 0,
                        RtVal::F(f) => f != 0.0,
                    };
                    block = if taken { *then_bb } else { *else_bb } as usize;
                }
                CompiledTerm::CondBr { cond, then_bb, else_bb } => {
                    let taken = match cond.read(self)? {
                        RtVal::I(v) => v != 0,
                        RtVal::P(p) => p != 0,
                        RtVal::F(f) => f != 0.0,
                    };
                    block = if taken { *then_bb } else { *else_bb } as usize;
                }
                CompiledTerm::Slow(t) => {
                    // `exec_term` (and any trap it builds) observes the
                    // frame at this block's entry position — the state the
                    // interpreter would have committed.
                    let fr = self.frames.last_mut().expect("active frame");
                    fr.block = block;
                    fr.idx = idx;
                    self.exec_term(t)?;
                    if self.frames.len() != depth || self.status.is_some() {
                        return Ok(());
                    }
                    // Same depth with the run still live: the corrupted-
                    // return path swapped this frame for a "gadget"
                    // frame. Re-read the position and continue there.
                    let fr = self.frames.last().expect("active frame");
                    func = fr.func.0 as usize;
                    block = fr.block;
                    idx = fr.idx;
                    fblocks = &code.funcs[func].blocks;
                    if single_block {
                        return Ok(());
                    }
                    budget = self.fuel.saturating_sub(self.insts);
                    continue;
                }
            }
            // Straight-line transfers track the position in locals only.
            // The frame is written exactly where it is observed: by
            // committing closures (calls, audit traps), before a `Slow`
            // terminator, and — here — when watch mode must see every
            // block entry.
            idx = 0;
            if single_block {
                let fr = self.frames.last_mut().expect("active frame");
                fr.block = block;
                fr.idx = 0;
                return Ok(());
            }
        }
    }

    /// Reverses the fast path's pre-charge for ops `j+1..n` and the
    /// terminator, which did not execute because op `j` trapped or
    /// transferred control. (A transferring call re-charges the suffix —
    /// terminator included — when the frame resumes at `j+1`.)
    #[inline]
    fn rollback_suffix(&mut self, cb: &CompiledBlock, j: usize, n: usize, branch_cost: u64) {
        self.insts -= (n - (j + 1)) as u64 + 1;
        self.cycles -= cb.cost_prefix[n] - cb.cost_prefix[j + 1] + branch_cost;
    }

    /// Slow-path block body: telemetry is counting opcode classes, or the
    /// fuel budget may expire mid-block — charge per op like the
    /// interpreter, terminator included. Outlined so the measurement path
    /// keeps only the pre-charge loop in its instruction stream. Returns
    /// `true` when the block ran to its terminator, `false` when an op
    /// transferred control out of the frame.
    #[cold]
    #[inline(never)]
    fn exec_block_slow(&mut self, cb: &CompiledBlock, idx: usize) -> Result<bool, Trap> {
        let attr_on = self.attr.is_some();
        let rec_on = self.rec.is_some();
        for (op, charge) in cb.ops[idx..].iter().zip(&cb.charge[idx..]) {
            if self.insts >= self.fuel {
                return Err(Trap::FuelExhausted);
            }
            self.insts += 1;
            if self.trace_enabled {
                self.opclass[charge.class] += 1;
            }
            self.cycles += charge.cost;
            // Recorder staging mirrors `exec_inst_obs`: PAC-family ops
            // carry their check-site id (baked into the charge stream in
            // the interpreter's scan order) so events and incident
            // synthesis name the same site in both engines.
            if rec_on && charge.class == OPCLASS_PAC {
                self.rec.as_deref_mut().expect("recorder armed").cur_site = charge.site;
            }
            // Attribution hooks mirror the interpreter's per-instruction
            // path (`exec_inst_obs`) exactly: sample check after the
            // cycle charge, per-site accounting around the op.
            let ctl = if attr_on {
                self.attr_maybe_sample();
                if charge.site != NO_SITE {
                    let (s0, a0) = (self.pac.sign_count, self.pac.auth_count);
                    let ctl = op(self);
                    self.attr_record_site(
                        charge.site,
                        charge.cost,
                        s0,
                        a0,
                        matches!(ctl, Control::Trap(_)),
                    );
                    ctl
                } else {
                    op(self)
                }
            } else {
                op(self)
            };
            match ctl {
                Control::Next => {}
                Control::Transfer => return Ok(false),
                Control::Trap(t) => return Err(*t),
            }
        }
        // Block exit: both engines fund the terminator through the same
        // charge site.
        self.charge_block_transfer()?;
        Ok(true)
    }
}
