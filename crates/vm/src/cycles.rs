//! The cycle-accounting model behind the performance evaluation.
//!
//! The paper measures wall-clock overhead on an Apple M1; off that testbed
//! we charge each executed IR operation a deterministic cycle cost and
//! report the instrumented/baseline cycle ratio. The PA cost follows the
//! paper's own emulation recipe: "we used seven XOR (`eor`) instructions as
//! an equivalent to one PA instruction on the Mac Mini M1" (§6.3.1) — with
//! ALU ops costing 1 cycle, a PA operation costs [`CostModel::pac_op`] = 7.

use rsti_ir::Inst;

/// Per-operation cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Plain ALU / move / cast operations.
    pub alu: u64,
    /// Memory loads and stores.
    pub mem: u64,
    /// Direct call / return bookkeeping.
    pub call: u64,
    /// Indirect call extra cost.
    pub icall: u64,
    /// Heap allocation.
    pub malloc: u64,
    /// One PA operation (`pac`/`aut`/`xpac`) — 7 XOR-equivalents.
    pub pac_op: u64,
    /// `pp_add` (metadata insertion, inlined compiler-rt call).
    pub pp_add: u64,
    /// `pp_sign`/`pp_auth` (PA op + metadata lookup).
    pub pp_pac: u64,
    /// Branch/terminator.
    pub branch: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            mem: 3,
            call: 4,
            icall: 6,
            malloc: 30,
            pac_op: 7,
            pp_add: 6,
            pp_pac: 9,
            branch: 1,
        }
    }
}

impl CostModel {
    /// Cycle cost of one instruction.
    pub fn cost(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Alloca { .. } => self.alu,
            Inst::Load { .. } | Inst::Store { .. } => self.mem,
            Inst::FieldAddr { .. }
            | Inst::IndexAddr { .. }
            | Inst::BitCast { .. }
            | Inst::Convert { .. }
            | Inst::Bin { .. }
            | Inst::Cmp { .. } => self.alu,
            Inst::Call { .. } => self.call,
            Inst::CallIndirect { .. } => self.icall,
            Inst::Malloc { .. } | Inst::Free { .. } => self.malloc,
            Inst::PrintInt { .. } | Inst::PrintStr { .. } => self.call,
            // A location-mixed PAC op (STL's `M ^ &p`) pays one extra ALU
            // op for the address `eor`; the optimizer's precomputed-
            // modifier pass folds static locations away, dropping a site
            // back to the plain `pac_op` cost.
            Inst::PacSign { loc: Some(_), .. } | Inst::PacAuth { loc: Some(_), .. } => {
                self.pac_op + self.alu
            }
            Inst::PacSign { .. } | Inst::PacAuth { .. } | Inst::PacStrip { .. } => self.pac_op,
            Inst::PpAdd { .. } => self.pp_add,
            Inst::PpSign { .. } | Inst::PpAuth { .. } => self.pp_pac,
            Inst::PpAddTbi { .. } => self.alu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsti_ir::{Operand, PacKey, PacSite, TypeId, ValueId};

    #[test]
    fn pac_ops_cost_seven_alu() {
        let c = CostModel::default();
        let sign = Inst::PacSign {
            result: ValueId(0),
            value: Operand::Null(TypeId(0)),
            key: PacKey::Da,
            modifier: 0,
            loc: None,
            site: PacSite::OnStore,
        };
        assert_eq!(c.cost(&sign), 7 * c.alu);
    }

    #[test]
    fn location_mix_costs_an_extra_alu() {
        let c = CostModel::default();
        let mixed = Inst::PacAuth {
            result: ValueId(0),
            value: Operand::Null(TypeId(0)),
            key: PacKey::Da,
            modifier: 0,
            loc: Some(Operand::Null(TypeId(0))),
            site: PacSite::OnLoad,
        };
        assert_eq!(c.cost(&mixed), c.pac_op + c.alu);
    }

    #[test]
    fn memory_ops_cost_more_than_alu() {
        let c = CostModel::default();
        let load = Inst::Load {
            result: ValueId(0),
            ptr: Operand::Null(TypeId(0)),
            ty: TypeId(4),
        };
        let add = Inst::Bin {
            result: ValueId(0),
            op: rsti_ir::BinOp::Add,
            lhs: Operand::ConstInt(1, TypeId(4)),
            rhs: Operand::ConstInt(2, TypeId(4)),
            ty: TypeId(4),
        };
        assert!(c.cost(&load) > c.cost(&add));
    }
}
