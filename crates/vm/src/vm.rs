//! The interpreter: executes (instrumented) IR under the PA model.
//!
//! The VM realizes the paper's threat model (§3):
//!
//! * the **attacker** owns an arbitrary read/write primitive over data
//!   memory ([`Vm::attacker_write`] / [`Vm::attacker_read`]) — the result
//!   of some memory-corruption bug — usable between execution steps;
//! * **DEP** holds: only functions loaded with the module can ever run;
//!   there is no way to introduce code;
//! * the **register file and call stack are out of reach** (shadow-stack /
//!   trusted-kernel assumptions): corruption happens to memory, not to
//!   in-flight values;
//! * **PA keys** live outside the address space entirely.
//!
//! Detection therefore works exactly as on hardware: the attacker can
//! write any bytes anywhere in data memory, but cannot mint a PAC, so a
//! corrupted pointer fails `aut` on its next load ([`Trap::PacAuthFailure`])
//! or — if it never passes through `aut` — faults as a non-canonical
//! address.

use crate::cycles::CostModel;
use crate::mem::{layout, Allocator, MemFault, Memory};
use rsti_core::{check_sites, CheckSite, GlobalSign, InstrumentedProgram, Mechanism};
use rsti_ir::{
    BinOp, CmpOp, FuncId, GlobalInit, Inst, Module, Operand, PacKey, PacSite, Terminator, Type,
    TypeId, TypeLayout, ValueId, VarId,
};
use rsti_pac::{KeyId, PacKeys, PacUnit, VaConfig};
use rsti_telemetry::{
    AuditRecord, CounterId, Event, Histogram, Incident, IncidentEvent, Phase, SignLineage,
    INCIDENT_SCHEMA,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

// The closure-threaded compiled engine. Declared as a child of this module
// (rather than a sibling under `lib.rs`) so its closures can reach the
// interpreter's private state — the register file, the PA unit, the audit
// constructors — without widening any of it beyond this file's contract.
#[path = "compile.rs"]
mod compile;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtVal {
    /// Integer (all widths; `bool` is 0/1).
    I(i64),
    /// Double.
    F(f64),
    /// Pointer — the full 64-bit pattern including PAC/TBI bits.
    P(u64),
}

impl fmt::Display for RtVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtVal::I(v) => write!(f, "{v}"),
            RtVal::F(v) => write!(f, "{v}"),
            RtVal::P(v) => write!(f, "{v:#x}"),
        }
    }
}

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq)]
pub enum Trap {
    /// A PAC authentication failed — RSTI detected pointer corruption.
    PacAuthFailure {
        /// Function where the `aut` executed.
        func: String,
        /// Source line (when debug info is present).
        line: u32,
        /// Which instrumentation site fired.
        site: PacSite,
        /// The PAC found on the pointer.
        found_pac: u64,
        /// The PAC expected for the modifier.
        expected_pac: u64,
    },
    /// A pointer-to-pointer authentication failed (missing/forged CE tag
    /// or metadata).
    PpAuthFailure {
        /// Function where it happened.
        func: String,
        /// Explanation.
        reason: String,
    },
    /// A memory fault (unmapped, read-only, out-of-range) — including
    /// dereferences of poisoned pointers.
    Mem {
        /// Function where it happened.
        func: String,
        /// The fault.
        fault: MemFault,
    },
    /// An indirect call through a non-canonical (PAC-carrying or poisoned)
    /// pointer.
    NonCanonicalCall {
        /// Function where it happened.
        func: String,
        /// The raw pointer.
        ptr: u64,
    },
    /// An indirect call to an address that is not a function.
    CallNonFunction {
        /// Function where it happened.
        func: String,
        /// The target address.
        target: u64,
    },
    /// Integer division by zero.
    DivByZero {
        /// Function where it happened.
        func: String,
    },
    /// The step budget ran out.
    FuelExhausted,
    /// Call depth exceeded the frame limit.
    StackOverflow,
    /// `malloc` arena exhausted.
    HeapExhausted,
    /// Internal inconsistency (verified IR should never reach these).
    BadProgram(String),
}

impl Trap {
    /// Whether this trap is a *defense detection* (an RSTI check fired)
    /// rather than an ordinary crash.
    pub fn is_detection(&self) -> bool {
        matches!(self, Trap::PacAuthFailure { .. } | Trap::PpAuthFailure { .. })
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::PacAuthFailure { func, line, site, found_pac, expected_pac } => write!(
                f,
                "PAC authentication failure in {func}:{line} at {site:?} (found {found_pac:#x}, expected {expected_pac:#x})"
            ),
            Trap::PpAuthFailure { func, reason } => {
                write!(f, "pointer-to-pointer authentication failure in {func}: {reason}")
            }
            Trap::Mem { func, fault } => write!(f, "memory fault in {func}: {fault}"),
            Trap::NonCanonicalCall { func, ptr } => {
                write!(f, "indirect call through non-canonical pointer {ptr:#x} in {func}")
            }
            Trap::CallNonFunction { func, target } => {
                write!(f, "indirect call to non-function {target:#x} in {func}")
            }
            Trap::DivByZero { func } => write!(f, "division by zero in {func}"),
            Trap::FuelExhausted => write!(f, "fuel exhausted"),
            Trap::StackOverflow => write!(f, "stack overflow"),
            Trap::HeapExhausted => write!(f, "heap exhausted"),
            Trap::BadProgram(s) => write!(f, "bad program: {s}"),
        }
    }
}

/// How execution ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Status {
    /// `main` returned with this value.
    Exited(i64),
    /// Execution trapped.
    Trapped(Trap),
}

impl Status {
    /// Whether the program ran to completion.
    pub fn is_exit(&self) -> bool {
        matches!(self, Status::Exited(_))
    }
}

/// A call into an external (uninstrumented) function, as observed by the
/// harness. Attack drivers assert on these to decide whether a payload
/// executed.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtEvent {
    /// External function name.
    pub name: String,
    /// Rendered arguments.
    pub args: Vec<String>,
    /// Whether this external is security-critical (`system`, `exec`,
    /// `mprotect`, `dlopen`, ...) — reaching one with attacker-controlled
    /// state is the attack goal in the Table 1 scenarios.
    pub critical: bool,
}

/// Names treated as security-critical sinks.
pub const CRITICAL_EXTERNALS: &[&str] =
    &["system", "exec", "execve", "mprotect", "dlopen", "ap_get_exec_line", "setuid"];

/// Aggregate results of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Final status.
    pub status: Status,
    /// `print_int` / `print_str` output lines.
    pub output: Vec<String>,
    /// External-call events.
    pub events: Vec<ExtEvent>,
    /// Modelled cycles.
    pub cycles: u64,
    /// Instructions executed.
    pub insts: u64,
    /// PA operations executed (sign, auth, failures).
    pub pac_signs: u64,
    /// Authentications executed.
    pub pac_auths: u64,
    /// Dynamic PA-operation counts per instrumentation site kind, in
    /// [`SITE_ORDER`] order — the runtime profile behind the §6.3.2
    /// instrumentation/overhead correlation.
    pub site_counts: [u64; 6],
    /// Executed instructions by opcode class, in [`OPCLASS_ORDER`] order.
    /// All zero unless telemetry was enabled when the VM was built.
    pub opclass_counts: [u64; 6],
    /// Structured audit record for every RSTI detection trap this run —
    /// always collected (a run traps at most once, so this is free).
    pub audit: Vec<AuditRecord>,
    /// Attribution profile — present only when the image was built with
    /// [`Image::with_attr`]. Deterministic: interp and compiled runs of
    /// the same image produce identical profiles (parity-tested).
    pub attr: Option<Box<AttrProfile>>,
    /// Forensic incident — present only when the image was built with
    /// [`Image::with_record`] *and* the run ended in an RSTI detection
    /// trap. Deterministic and bit-identical across engines (the fuzz
    /// oracle and the parity suite diff it through `PartialEq`).
    pub incident: Option<Box<Incident>>,
}

/// Order of [`ExecResult::site_counts`].
pub const SITE_ORDER: [PacSite; 6] = [
    PacSite::OnStore,
    PacSite::OnLoad,
    PacSite::CastResign,
    PacSite::ArgResign,
    PacSite::ExternalStrip,
    PacSite::NewPointer,
];

fn site_index(site: PacSite) -> usize {
    SITE_ORDER.iter().position(|&s| s == site).expect("covered")
}

/// Names of the opcode classes counted in [`ExecResult::opclass_counts`].
pub const OPCLASS_ORDER: [&str; 6] = ["mem", "arith", "call", "pac", "branch", "other"];

const OPCLASS_MEM: usize = 0;
const OPCLASS_ARITH: usize = 1;
const OPCLASS_CALL: usize = 2;
const OPCLASS_PAC: usize = 3;
const OPCLASS_BRANCH: usize = 4;
const OPCLASS_OTHER: usize = 5;

fn opcode_class(inst: &Inst) -> usize {
    match inst {
        Inst::Alloca { .. } | Inst::Load { .. } | Inst::Store { .. } => OPCLASS_MEM,
        Inst::FieldAddr { .. }
        | Inst::IndexAddr { .. }
        | Inst::BitCast { .. }
        | Inst::Convert { .. }
        | Inst::Bin { .. }
        | Inst::Cmp { .. } => OPCLASS_ARITH,
        Inst::Call { .. } | Inst::CallIndirect { .. } => OPCLASS_CALL,
        Inst::PacSign { .. }
        | Inst::PacAuth { .. }
        | Inst::PacStrip { .. }
        | Inst::PpAdd { .. }
        | Inst::PpSign { .. }
        | Inst::PpAddTbi { .. }
        | Inst::PpAuth { .. } => OPCLASS_PAC,
        Inst::Malloc { .. } | Inst::Free { .. } | Inst::PrintInt { .. } | Inst::PrintStr { .. } => {
            OPCLASS_OTHER
        }
    }
}

/// Builds the out-of-range trap for a malformed image. Kept out of line
/// so the bounds checks in the interpreter's hottest functions compile to
/// a branch plus a call into cold code instead of inline `format!`
/// machinery.
#[cold]
#[inline(never)]
fn oob(what: &'static str, idx: usize) -> Trap {
    Trap::BadProgram(format!("{what} {idx} out of range"))
}

/// Grows a register-file-shaped table so a malformed image's write past
/// the declared value table lands in fresh slots instead of aborting the
/// process. Out of line: the resize machinery stays off the hot path.
#[cold]
#[inline(never)]
fn grow_slots<T: Copy>(slots: &mut Vec<T>, idx: usize, fill: T) {
    slots.resize(idx + 1, fill);
}

#[cold]
#[inline(never)]
fn missing_block(block: usize, func: &str) -> Trap {
    Trap::BadProgram(format!("branch to missing block {block} in {func}"))
}

#[cold]
#[inline(never)]
fn external_frame(func: &str) -> Trap {
    Trap::BadProgram(format!("frame pushed for external function {func}"))
}

/// Which pointer-to-pointer metadata check failed, carried as plain
/// numbers so [`Vm::pp_fail`] can render the messages out of line.
enum PpFail {
    Conflict { ce: u64, had: u64 },
    NotRegistered { ce: u64 },
    MissingTag,
    NotInStore { ce: u64 },
}

fn site_name(site: PacSite) -> &'static str {
    match site {
        PacSite::OnStore => "on_store",
        PacSite::OnLoad => "on_load",
        PacSite::CastResign => "cast_resign",
        PacSite::ArgResign => "arg_resign",
        PacSite::ExternalStrip => "external_strip",
        PacSite::NewPointer => "new_pointer",
    }
}

impl ExecResult {
    /// Whether any critical external was reached.
    pub fn reached_critical(&self) -> bool {
        self.events.iter().any(|e| e.critical)
    }
}

// ---------------------------------------------------------------------------
// Attribution profiling
// ---------------------------------------------------------------------------

/// Per-function exclusive attribution: everything charged while this
/// function's frame was innermost.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncAttr {
    /// Function symbol name.
    pub name: String,
    /// Activations (frames pushed).
    pub calls: u64,
    /// Exclusive model cycles.
    pub cycles: u64,
    /// Exclusive instructions executed.
    pub insts: u64,
    /// Dynamic `pac` (sign) operations.
    pub pac_signs: u64,
    /// Dynamic `aut` operations.
    pub pac_auths: u64,
    /// Runs that trapped while this function was innermost (0 or 1).
    pub traps: u64,
    /// Exclusive cycles spent in `pac`/`aut`/`xpac` instructions (summed
    /// from this function's check sites).
    pub pac_cycles: u64,
    /// Exclusive cycles spent in `pp_*` metadata checks.
    pub pp_cycles: u64,
    /// Inclusive cycles per completed activation, log-bucketed.
    pub incl: Histogram,
}

/// Per-check-site attribution: one PAC-family instruction in the final
/// module, keyed by its [`CheckSite`] identity.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteAttr {
    /// The static site (function/block/instruction/kind/source line).
    pub site: CheckSite,
    /// Dynamic executions.
    pub execs: u64,
    /// Model cycles charged at this site.
    pub cycles: u64,
    /// Sign operations performed here.
    pub signs: u64,
    /// Authentications performed here.
    pub auths: u64,
    /// Traps raised here (0 or 1 per run).
    pub traps: u64,
}

/// The attribution profile of one run: per-function and per-check-site
/// accumulators plus deterministically sampled folded call stacks.
///
/// Everything here is derived from the deterministic cycle model, so two
/// runs of the same image — under either execution engine — produce
/// bit-identical profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrProfile {
    /// Sampling period (model cycles between call-stack samples).
    pub sample_every: u64,
    /// Call-stack samples taken.
    pub samples: u64,
    /// Per-function accumulators, indexed by [`rsti_ir::FuncId`].
    pub funcs: Vec<FuncAttr>,
    /// Per-check-site accumulators, in site-table order.
    pub sites: Vec<SiteAttr>,
    /// Sampled call paths (outermost frame first, function names) with
    /// sample counts, sorted by path.
    pub folded: Vec<(Vec<String>, u64)>,
}

impl AttrProfile {
    /// The profile's folded call stacks in inferno/flamegraph.pl format.
    pub fn folded_lines(&self) -> String {
        rsti_telemetry::to_folded(&self.folded)
    }

    /// Function indices sorted hottest-first by exclusive cycles.
    pub fn ranked_funcs(&self) -> Vec<usize> {
        let mut order: Vec<usize> =
            (0..self.funcs.len()).filter(|&i| self.funcs[i].cycles > 0).collect();
        order.sort_by(|&a, &b| {
            self.funcs[b]
                .cycles
                .cmp(&self.funcs[a].cycles)
                .then_with(|| self.funcs[a].name.cmp(&self.funcs[b].name))
        });
        order
    }
}

/// Default sampling period: fine enough to resolve call paths on the
/// nbench/NGINX workloads (~hundreds of samples per run), coarse enough
/// that sampling stays a rounding error next to per-op attribution.
pub const DEFAULT_ATTR_SAMPLE_EVERY: u64 = 4096;

/// `OpCharge::site` / site-lookup sentinel: not a check site.
pub(crate) const NO_SITE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, Default)]
struct SiteStat {
    execs: u64,
    cycles: u64,
    signs: u64,
    auths: u64,
    traps: u64,
}

#[derive(Debug, Clone, Default)]
struct FuncStat {
    calls: u64,
    cycles: u64,
    insts: u64,
    signs: u64,
    auths: u64,
    traps: u64,
    incl: Histogram,
}

/// Per-run attribution state, allocated only when [`Image::attr`] is on.
///
/// Attribution observes the run at exactly the points both engines already
/// share — `push_frame`, the `Ret` arm of `exec_term`, the per-op charge
/// sites, and `charge_block_transfer` — so the two engines attribute
/// identically by construction (the compiled driver takes its per-op slow
/// path under attribution; see `exec_compiled`).
struct AttrState {
    /// The static check-site table, in deterministic scan order.
    sites: Vec<CheckSite>,
    /// `(func, block, inst)` → site id, the interpreter's lookup. The
    /// compiled engine bakes the same ids into its `OpCharge` stream.
    site_map: HashMap<(u32, u32, u32), u32>,
    site_stats: Vec<SiteStat>,
    /// Indexed by function id.
    funcs: Vec<FuncStat>,
    /// Checkpoint of the run totals at the last frame transition; the
    /// delta since is charged to the outgoing function.
    last_cycles: u64,
    last_insts: u64,
    last_signs: u64,
    last_auths: u64,
    /// Deterministic sampler: a call-stack sample is due each time
    /// `Vm::cycles` crosses a multiple of `sample_every`.
    sample_every: u64,
    next_sample: u64,
    n_samples: u64,
    samples: HashMap<Vec<u32>, u64>,
}

impl AttrState {
    fn new(module: &Module, sample_every: u64) -> Box<Self> {
        let sites = check_sites(module);
        let site_map = sites
            .iter()
            .map(|s| ((s.func, s.block, s.inst), s.id))
            .collect::<HashMap<_, _>>();
        let n_sites = sites.len();
        let sample_every = sample_every.max(1);
        Box::new(AttrState {
            sites,
            site_map,
            site_stats: vec![SiteStat::default(); n_sites],
            funcs: vec![FuncStat::default(); module.funcs.len()],
            last_cycles: 0,
            last_insts: 0,
            last_signs: 0,
            last_auths: 0,
            sample_every,
            next_sample: sample_every,
            n_samples: 0,
            samples: HashMap::new(),
        })
    }
}

// ---------------------------------------------------------------------------
// Flight recorder (violation forensics)
// ---------------------------------------------------------------------------

/// Default flight-recorder ring capacity. Sized so that the recorded
/// window comfortably spans one pointer round trip (sign → store → scope
/// churn → load → auth) on every Table 1 scenario while the ring stays a
/// few KiB of plain `Copy` rows.
pub const DEFAULT_RECORD_CAP: usize = 64;

/// Key-code sentinel: no PA key involved in the event.
const KEY_NONE: u8 = u8::MAX;

fn key_code(k: KeyId) -> u8 {
    match k {
        KeyId::Ia => 0,
        KeyId::Ib => 1,
        KeyId::Da => 2,
        KeyId::Db => 3,
        KeyId::Ga => 4,
    }
}

fn key_label(code: u8) -> &'static str {
    match code {
        0 => "ia",
        1 => "ib",
        2 => "da",
        3 => "db",
        4 => "ga",
        _ => "",
    }
}

/// The closed pointer-lifecycle event taxonomy the recorder captures.
/// `name()` values are the serialized `IncidentEvent::kind` contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecKind {
    Sign,
    Auth,
    AuthFail,
    Strip,
    Load,
    Store,
    Free,
    ScopeEnter,
    ScopeExit,
    AttackerWrite,
}

impl RecKind {
    fn name(self) -> &'static str {
        match self {
            RecKind::Sign => "sign",
            RecKind::Auth => "auth",
            RecKind::AuthFail => "auth_fail",
            RecKind::Strip => "strip",
            RecKind::Load => "load",
            RecKind::Store => "store",
            RecKind::Free => "free",
            RecKind::ScopeEnter => "scope_enter",
            RecKind::ScopeExit => "scope_exit",
            RecKind::AttackerWrite => "attacker_write",
        }
    }
}

/// One compact ring row. Ids instead of names: resolution to an
/// [`IncidentEvent`] happens once, at incident synthesis.
#[derive(Debug, Clone, Copy)]
struct RecEvent {
    cycle: u64,
    kind: RecKind,
    /// Function id at event time ([`u32::MAX`] when no frame is live).
    func: u32,
    /// Check-site id for PAC-family events, else [`NO_SITE`].
    site: u32,
    addr: u64,
    value: u64,
    modifier: u64,
    key: u8,
}

/// Per-run flight-recorder state, allocated only when [`Image::record`]
/// is on. Mirrors [`AttrState`]'s discipline: events are captured at
/// logic both engines share (or at mirrored points with identical
/// arguments), timestamps come from the deterministic cycle model, and
/// the recorder forces the compiled driver onto its per-op slow path —
/// so interp and compiled runs record bit-identical windows.
struct RecState {
    /// The static check-site table, in deterministic scan order (the same
    /// ids the attribution profiler uses).
    sites: Vec<CheckSite>,
    /// `(func, block, inst)` → site id, the interpreter's lookup. The
    /// compiled engine reads the same ids off its `OpCharge` stream.
    site_map: HashMap<(u32, u32, u32), u32>,
    /// Bounded ring of recent events; `next` is the overwrite cursor
    /// (the oldest row) once the ring is full.
    ring: Vec<RecEvent>,
    cap: usize,
    next: usize,
    dropped: u64,
    /// Check-site id of the op currently executing (staged by the slow
    /// paths before each PAC-family op; read by sign/auth/strip events).
    cur_site: u32,
    /// The synthesized incident, set at the first detection trap.
    incident: Option<Box<Incident>>,
}

impl RecState {
    fn new(module: &Module, cap: usize) -> Box<Self> {
        let sites = check_sites(module);
        let site_map = sites
            .iter()
            .map(|s| ((s.func, s.block, s.inst), s.id))
            .collect::<HashMap<_, _>>();
        let cap = cap.max(1);
        Box::new(RecState {
            sites,
            site_map,
            ring: Vec::with_capacity(cap.min(1024)),
            cap,
            next: 0,
            dropped: 0,
            cur_site: NO_SITE,
            incident: None,
        })
    }

    fn push(&mut self, ev: RecEvent) {
        if self.ring.len() < self.cap {
            self.ring.push(ev);
        } else {
            self.ring[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// The ring's contents oldest-first.
    fn in_order(&self) -> Vec<RecEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.next..]);
        out.extend_from_slice(&self.ring[..self.next]);
        out
    }
}

/// Resolves a check-site id to its stable label (empty for [`NO_SITE`]
/// or an out-of-table id).
fn site_label(sites: &[CheckSite], id: u32) -> String {
    if id == NO_SITE {
        return String::new();
    }
    sites.get(id as usize).map_or_else(String::new, |s| s.label())
}

/// How RSTI checks are enforced at runtime.
///
/// The paper (§7, "RSTI with mechanisms other than PAC") argues the
/// policy is enforcement-agnostic: "The enforcement can be done with any
/// mechanism that can utilize the scope-type information. For example,
/// CCFI relies on classes of pointers and an AES cryptographic function
/// to generate MACs that get stored alongside the object." Both styles
/// are implemented:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// ARMv8.3-style: the PAC lives in the pointer's unused top bits.
    #[default]
    PacInPointer,
    /// CCFI-style: a keyed MAC over (pointer, modifier) is kept in a
    /// shadow table indexed by the slot address; pointers stay canonical.
    MacTable,
}

/// Which engine executes the image.
///
/// Both engines are observably identical — same traps, same audit
/// records, same cycle/instruction accounting, same telemetry counters —
/// so the interpreter serves as the differential oracle for the compiled
/// engine (the fuzz matrix checks every mechanism × opt level under
/// both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// The match-dispatch interpreter ([`Vm::step`]).
    #[default]
    Interp,
    /// Closure-threaded compiled code: each basic block is compiled once
    /// into a chain of closures with pre-resolved operand slots, then
    /// direct-threaded through branch successors.
    Compiled,
}

impl ExecBackend {
    /// Short stable label (`interp` / `compiled`) for tables and configs.
    pub fn label(self) -> &'static str {
        match self {
            ExecBackend::Interp => "interp",
            ExecBackend::Compiled => "compiled",
        }
    }
}

/// Lazily-built compiled code, shared by clones of an [`Image`] and
/// revalidated against the image's current cost model and enforcement
/// backend (the two knobs folded into compiled closures) on every use —
/// mutating a pub field after a run cannot leave stale code behind.
pub(crate) struct CompiledCache(Mutex<Option<Arc<compile::CompiledModule>>>);

impl CompiledCache {
    fn empty() -> Self {
        CompiledCache(Mutex::new(None))
    }
}

impl fmt::Debug for CompiledCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = match self.0.lock() {
            Ok(g) if g.is_some() => "compiled",
            Ok(_) => "empty",
            Err(_) => "poisoned",
        };
        write!(f, "CompiledCache({state})")
    }
}

impl Clone for CompiledCache {
    fn clone(&self) -> Self {
        // Share the already-compiled code. A poisoned lock is recovered,
        // not treated as empty: the `Option<Arc<CompiledModule>>` inside is
        // always valid (the panic happened in some other holder's critical
        // section, e.g. mid-`compile_module`, which writes the slot only on
        // success), and cloning `None` here would silently force every
        // future clone of a once-panicked image to recompile forever.
        let inner = self.0.lock().unwrap_or_else(|p| p.into_inner()).clone();
        CompiledCache(Mutex::new(inner))
    }
}

/// A loadable program image: module + runtime configuration.
///
/// The module is held behind an [`Arc`] so that building an image — and
/// cloning one per measurement run — never deep-copies the program. The
/// measurement harness constructs hundreds of images per Fig. 9 sweep;
/// with the shared module an `Image` is a handful of plain-data fields.
#[derive(Debug, Clone)]
pub struct Image {
    /// The (possibly instrumented) module, shared between images and runs.
    pub module: Arc<Module>,
    /// Mechanism, `None` for an uninstrumented baseline image.
    pub mechanism: Option<Mechanism>,
    /// Globals the loader signs before `main`.
    pub global_signing: Vec<GlobalSign>,
    /// PA keys (per-process, kernel-generated).
    pub keys: PacKeys,
    /// VA layout.
    pub va: VaConfig,
    /// Cycle model.
    pub cost: CostModel,
    /// Heap arena size in bytes.
    pub heap_size: u64,
    /// Stack arena size in bytes.
    pub stack_size: u64,
    /// Enforcement backend.
    pub backend: Backend,
    /// Whether return addresses are protected out-of-band (the paper's §3
    /// shadow-stack assumption; default `true`). With `false`, each frame
    /// spills its return address into attacker-reachable stack memory and
    /// honours whatever is there on return — the classic ROP surface RSTI
    /// explicitly does *not* cover.
    pub shadow_stack: bool,
    /// Execution engine (default [`ExecBackend::Interp`]).
    pub exec: ExecBackend,
    /// Attribution profiling: per-function/per-site accounting plus the
    /// deterministic call-stack sampler. Off by default and provably
    /// inert — with `false`, runs charge not one extra cycle/inst and the
    /// VM's only cost is a handful of is-none branches.
    pub attr: bool,
    /// Sampling period for the call-path profiler, in model cycles
    /// (used only while `attr` is on).
    pub attr_sample_every: u64,
    /// Flight recorder: a bounded ring of pointer-lifecycle events plus
    /// incident synthesis at the first detection trap. Off by default and
    /// inert like `attr` — with `false`, runs charge not one extra
    /// cycle/inst and the VM's only cost is a handful of is-none
    /// branches.
    pub record: bool,
    /// Ring capacity for the flight recorder (used only while `record`
    /// is on).
    pub record_cap: usize,
    /// Cache of closure-threaded code, filled on the first compiled run.
    compiled: CompiledCache,
}

impl Image {
    /// Switches the enforcement backend (builder style).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Switches the execution engine (builder style).
    pub fn with_exec(mut self, exec: ExecBackend) -> Self {
        self.exec = exec;
        self
    }

    /// Disables the shadow stack (builder style) — for experiments that
    /// demonstrate why the paper's §3 assumption matters.
    pub fn without_shadow_stack(mut self) -> Self {
        self.shadow_stack = false;
        self
    }

    /// Enables the attribution profiler (builder style) with the default
    /// sampling period.
    pub fn with_attr(mut self) -> Self {
        self.attr = true;
        self
    }

    /// Enables the attribution profiler with a custom sampling period in
    /// model cycles (builder style). `0` is clamped to 1.
    pub fn with_attr_sampling(mut self, every: u64) -> Self {
        self.attr = true;
        self.attr_sample_every = every.max(1);
        self
    }

    /// Arms the flight recorder (builder style) with the default ring
    /// capacity: a trapped run then carries an [`Incident`] on its
    /// [`ExecResult`].
    pub fn with_record(mut self) -> Self {
        self.record = true;
        self
    }

    /// Arms the flight recorder with a custom ring capacity (builder
    /// style). `0` is clamped to 1.
    pub fn with_record_cap(mut self, cap: usize) -> Self {
        self.record = true;
        self.record_cap = cap.max(1);
        self
    }

    /// Forces the compiled engine's lazy translation to run now. Benches
    /// call this outside their timed region so throughput numbers measure
    /// steady-state execution rather than the one-time per-image
    /// translation (a no-op for interpreter images, which need none).
    pub fn precompile(&self) {
        if self.exec == ExecBackend::Compiled {
            let _ = self.compiled();
        }
    }

    /// The compiled form of this image, building (and counting) it on
    /// first use. Cached code is reused only while the image's cost model
    /// and enforcement backend still match the fingerprint it was
    /// compiled under.
    pub(crate) fn compiled(&self) -> Arc<compile::CompiledModule> {
        let mut guard = self.compiled.0.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(code) = guard.as_ref() {
            if code.fingerprint == (self.cost, self.backend) {
                return Arc::clone(code);
            }
        }
        let tel = rsti_telemetry::global();
        let code = {
            let _span = tel.span(Phase::VmCompile);
            Arc::new(compile::compile_module(self))
        };
        tel.add(CounterId::VmCompiledBlocks, code.n_blocks);
        *guard = Some(Arc::clone(&code));
        code
    }

    /// Poisons the compiled-cache lock the way a real panic during
    /// compilation would: a thread panics while holding the guard. For the
    /// poison-recovery regression tests.
    #[cfg(test)]
    pub(crate) fn poison_compiled_lock_for_tests(&self) {
        let result = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = self.compiled.0.lock().unwrap_or_else(|p| p.into_inner());
                panic!("poisoning the compiled-cache lock (expected test panic)");
            })
            .join()
        });
        assert!(result.is_err(), "the poisoning thread must have panicked");
        assert!(self.compiled.0.lock().is_err(), "lock must now be poisoned");
    }
}

impl Image {
    /// Builds an image from an instrumented program.
    ///
    /// The PARTS baseline pays a higher per-PAC-op cost: the paper
    /// attributes PARTS' much larger overhead (19.5% vs RSTI's 1.54% on
    /// nbench) to engineering, not extra checks — "using LLVM ptrauth
    /// intrinsics, running the pass in the backend, using LTO and -O2
    /// optimizations allowed our compiler to produce more optimized code"
    /// (§6.3.2). We model PARTS' non-inlined runtime calls and spills as
    /// `pac_op = 22` cycles (PA op + call + two memory accesses) instead
    /// of RSTI's inlined 7.
    pub fn from_instrumented(p: &InstrumentedProgram) -> Self {
        Self::instrumented_parts(Arc::new(p.module.clone()), p.mechanism, p.global_signing.clone())
    }

    /// Builds an image from an instrumented program, taking ownership —
    /// the zero-copy path for harnesses that instrument once per run.
    pub fn from_instrumented_owned(p: InstrumentedProgram) -> Self {
        let mechanism = p.mechanism;
        Self::instrumented_parts(Arc::new(p.module), mechanism, p.global_signing)
    }

    fn instrumented_parts(
        module: Arc<Module>,
        mechanism: Mechanism,
        global_signing: Vec<GlobalSign>,
    ) -> Self {
        let mut cost = CostModel::default();
        if mechanism == Mechanism::Parts {
            cost.pac_op = 22;
            cost.pp_pac = 24;
        }
        Image {
            module,
            mechanism: Some(mechanism),
            global_signing,
            keys: PacKeys::test_keys(),
            va: VaConfig::paper_default(),
            cost,
            heap_size: 4 << 20,
            stack_size: 4 << 20,
            backend: Backend::PacInPointer,
            shadow_stack: true,
            exec: ExecBackend::Interp,
            attr: false,
            attr_sample_every: DEFAULT_ATTR_SAMPLE_EVERY,
            record: false,
            record_cap: DEFAULT_RECORD_CAP,
            compiled: CompiledCache::empty(),
        }
    }

    /// Builds an uninstrumented baseline image.
    pub fn baseline(m: &Module) -> Self {
        Self::baseline_shared(Arc::new(m.clone()))
    }

    /// Builds an uninstrumented baseline image around an already-shared
    /// module — no copy at all.
    pub fn baseline_shared(module: Arc<Module>) -> Self {
        Image {
            module,
            mechanism: None,
            global_signing: Vec::new(),
            keys: PacKeys::test_keys(),
            va: VaConfig::paper_default(),
            cost: CostModel::default(),
            heap_size: 4 << 20,
            stack_size: 4 << 20,
            backend: Backend::PacInPointer,
            shadow_stack: true,
            exec: ExecBackend::Interp,
            attr: false,
            attr_sample_every: DEFAULT_ATTR_SAMPLE_EVERY,
            record: false,
            record_cap: DEFAULT_RECORD_CAP,
            compiled: CompiledCache::empty(),
        }
    }

    /// Builds an uninstrumented baseline image, taking ownership of the
    /// module (zero-copy).
    pub fn baseline_owned(m: Module) -> Self {
        Self::baseline_shared(Arc::new(m))
    }
}

struct Frame {
    func: FuncId,
    block: usize,
    idx: usize,
    /// Start of this frame's register window in the VM-wide flat file
    /// ([`Vm::regs`]). Keeping one contiguous `Vec` for every live frame
    /// (instead of a `Vec` per frame) makes a register access two
    /// independent loads off the `Vm` pointer rather than a dependent
    /// chain through `frames.last()` — the single hottest path in both
    /// engines.
    reg_base: usize,
    stack_mark: u64,
    ret_to: Option<ValueId>,
    locals: Vec<(VarId, u64)>,
    /// Per-value alloca address cache, indexed and generation-tagged like
    /// the register file (an entry is live only when its tag matches
    /// `gen`).
    alloca_cache: Vec<(u64, u64)>,
    /// The activation's generation tag (globally unique, from
    /// [`Vm::gen_counter`]): a register or alloca-cache slot is defined
    /// only when its tag matches, so stale slots left behind by popped
    /// frames or recycled buffers need no memset.
    gen: u64,
    /// Without a shadow stack: the in-memory slot holding the return
    /// address, and the value it is supposed to contain.
    ret_slot: Option<(u64, u64)>,
    /// `Vm::cycles` at frame push — the attribution profiler's inclusive
    /// activation timer (a plain store; kept even with attribution off).
    entry_cycles: u64,
}

impl Frame {
    fn blank() -> Self {
        Frame {
            func: FuncId(0),
            block: 0,
            idx: 0,
            reg_base: 0,
            stack_mark: 0,
            ret_to: None,
            locals: Vec::new(),
            alloca_cache: Vec::new(),
            gen: 0,
            ret_slot: None,
            entry_cycles: 0,
        }
    }
}

/// The virtual machine.
pub struct Vm<'img> {
    img: &'img Image,
    /// Precomputed type sizes / field offsets — address arithmetic in the
    /// `IndexAddr` / `FieldAddr` / `Alloca` arms is an indexed load rather
    /// than a recursive walk over struct definitions per instruction.
    tl: TypeLayout,
    /// Memory (attacker-reachable data lives here).
    pub mem: Memory,
    alloc: Allocator,
    pac: PacUnit,
    pp_table: HashMap<u8, u64>,
    frames: Vec<Frame>,
    /// The flat register file: every live frame's window, contiguous.
    /// `regs.len()` is a high-water mark — slots past [`Vm::reg_top`]
    /// hold stale generations and are never considered defined.
    regs: Vec<(u64, RtVal)>,
    /// End of the top frame's register window (the next push's base).
    reg_top: usize,
    /// Mirror of the top frame's `reg_base`, kept in `Vm` so the hot
    /// accessors skip the `frames.last()` chain.
    reg_base: usize,
    /// Mirror of the top frame's `gen`.
    cur_gen: u64,
    /// Source of globally unique activation generations.
    gen_counter: u64,
    /// Precomputed from `img.va` at construction: the bits that make a
    /// pointer non-canonical, and the translated-address mask — so the
    /// per-access canonicality check in [`Vm::deref_addr`] is two ANDs
    /// instead of a walk over the VA configuration.
    noncanon_mask: u64,
    addr_mask: u64,
    /// Retired frames kept for reuse: their `alloca_cache`/`locals`
    /// buffers are recycled so steady-state call/return performs no heap
    /// allocation.
    frame_pool: Vec<Frame>,
    output: Vec<String>,
    events: Vec<ExtEvent>,
    cycles: u64,
    insts: u64,
    fuel: u64,
    global_addrs: Vec<u64>,
    str_addrs: Vec<u64>,
    stack_top: u64,
    status: Option<Status>,
    paused: bool,
    /// MacTable backend: slot address → MAC of (pointer, modifier).
    /// Lives outside the attacker-addressable space, like the PA keys —
    /// CCFI's inline MACs would instead be copyable alongside the object,
    /// a weakening we do not model.
    mac_table: HashMap<u64, u64>,
    /// MacTable backend: MAC staged by a `PacSign` awaiting its store, or
    /// consumed by an immediately following `PacAuth` (register-domain
    /// re-sign round trips).
    pending_mac: Option<u64>,
    /// MacTable backend: slot address of the last pointer load.
    last_ptr_load: Option<u64>,
    site_counts: [u64; 6],
    /// Scratch buffer for evaluated call arguments, reused across calls so
    /// argument passing allocates nothing in steady state.
    call_args: Vec<RtVal>,
    /// Snapshot of the global collector's enabled flag, taken at load:
    /// the per-instruction opcode-class counting branches on this plain
    /// bool instead of re-reading the atomic in the hot loop.
    trace_enabled: bool,
    /// Executed instructions by opcode class ([`OPCLASS_ORDER`]); counted
    /// only while `trace_enabled`.
    opclass: [u64; 6],
    /// Violation audit log: one record per RSTI detection trap. Always
    /// collected — a run traps at most once, so the cost is nil.
    audit: Vec<AuditRecord>,
    /// Guards the once-per-run flush into the global collector.
    telemetry_flushed: bool,
    /// Attribution profiling state — `None` (one pointer-null branch per
    /// hook) unless the image enables it.
    attr: Option<Box<AttrState>>,
    /// Flight-recorder state — `None` (one pointer-null branch per hook)
    /// unless the image arms it.
    rec: Option<Box<RecState>>,
}

/// Result of [`Vm::run_to_function`].
#[derive(Debug, Clone, PartialEq)]
pub enum RunStop {
    /// The watched function was entered; the VM is paused at its first
    /// instruction.
    Entered,
    /// Execution ended before reaching the function.
    Done(Status),
}

impl<'img> Vm<'img> {
    /// Loads an image: lays out globals and strings, applies load-time
    /// signing, and prepares to call `main`. A module without a `main`
    /// function yields a VM already trapped with [`Trap::BadProgram`]
    /// rather than a panic.
    pub fn new(img: &'img Image) -> Self {
        let m = &img.module;
        // Globals layout — delegated to the module so the optimizer's
        // precomputed-modifier pass folds exactly the addresses the VM
        // loads at (`rsti_ir::Module::global_addresses` is the contract).
        let gaddr = m.global_addresses();
        let goff = match (gaddr.last(), m.globals.last()) {
            (Some(&base), Some(g)) => base
                .saturating_sub(layout::GLOBAL_BASE)
                // Saturating: absurd global sizes must survive layout so
                // the segment-size check below can reject them with a trap.
                .saturating_add(m.types.size_of(g.ty).max(8).div_ceil(8).saturating_mul(8)),
            _ => 0,
        };
        // Strings layout.
        let (saddr, soff) = string_addresses(m);
        // Segment sizes are program-derived (a huge global array inflates
        // `goff`); an oversized request loads into an already-trapped VM,
        // mirroring the no-`main` path below, instead of aborting the host.
        let (mut mem, mem_fault) =
            match Memory::new(goff.max(8), soff.max(8), img.heap_size, img.stack_size) {
                Ok(mem) => (mem, None),
                Err(fault) => (
                    Memory::new(8, 8, 64, 64).expect("minimal layout fits"),
                    Some(fault),
                ),
            };
        // String contents (program-read-only segment; written here via the
        // loader's privileged path).
        if mem_fault.is_none() {
            for (s, &a) in m.strings.iter().zip(&saddr) {
                let mut bytes = s.as_bytes().to_vec();
                bytes.push(0);
                mem.attacker_write(a, &bytes).expect("string fits");
            }
        }
        let mut pac = PacUnit::new(&img.keys, img.va);
        // Global initializers.
        let vm_init = |mem: &mut Memory| {
            for (gi, g) in m.globals.iter().enumerate() {
                let a = gaddr[gi];
                match &g.init {
                    GlobalInit::Zero => {}
                    GlobalInit::Int(v) => {
                        let size = m.types.size_of(g.ty).clamp(1, 8);
                        let bytes = v.to_le_bytes();
                        mem.write(a, &bytes[..size as usize]).expect("global fits");
                    }
                    GlobalInit::FuncAddr(fid) => {
                        let fa = func_address(m, *fid);
                        mem.write_u64(a, fa).expect("global fits");
                    }
                    GlobalInit::Str(sid) => {
                        mem.write_u64(a, saddr[sid.0 as usize]).expect("global fits");
                    }
                }
            }
        };
        if mem_fault.is_none() {
            vm_init(&mut mem);
        }
        // Load-time signing of static pointer initializers.
        let mut boot_macs: Vec<(u64, u64)> = Vec::new();
        for gs in img.global_signing.iter().filter(|_| mem_fault.is_none()) {
            let a = gaddr[gs.global.0 as usize];
            let raw = mem.read_u64(a).expect("global mapped");
            if raw == 0 {
                continue;
            }
            let modifier = if gs.mix_location { gs.modifier ^ a } else { gs.modifier };
            match img.backend {
                Backend::PacInPointer => {
                    let signed = pac.sign(key_id(gs.key), raw, modifier);
                    mem.write_u64(a, signed).expect("global mapped");
                }
                Backend::MacTable => {
                    let mac = pac.compute_pac(key_id(gs.key), raw, modifier);
                    boot_macs.push((a, mac));
                }
            }
        }

        let mut vm = Vm {
            img,
            tl: m.types.layout(),
            mem,
            alloc: Allocator::new(img.heap_size),
            pac,
            pp_table: HashMap::new(),
            frames: Vec::new(),
            regs: Vec::new(),
            reg_top: 0,
            reg_base: 0,
            cur_gen: 0,
            gen_counter: 0,
            noncanon_mask: img.va.pac_mask()
                | if img.va.tbi_mask() == 0 { 0xFF00_0000_0000_0000 } else { 0 },
            addr_mask: img.va.addr_mask(),
            frame_pool: Vec::new(),
            output: Vec::new(),
            events: Vec::new(),
            cycles: 0,
            insts: 0,
            fuel: 500_000_000,
            global_addrs: gaddr,
            str_addrs: saddr,
            stack_top: layout::STACK_BASE,
            status: None,
            paused: false,
            mac_table: boot_macs.into_iter().collect(),
            pending_mac: None,
            last_ptr_load: None,
            site_counts: [0; 6],
            call_args: Vec::new(),
            trace_enabled: rsti_telemetry::global().is_enabled(),
            opclass: [0; 6],
            audit: Vec::new(),
            telemetry_flushed: false,
            attr: img.attr.then(|| AttrState::new(&img.module, img.attr_sample_every)),
            rec: img.record.then(|| RecState::new(&img.module, img.record_cap)),
        };
        // A malformed image (no `main`, a `main` that cannot get a frame,
        // or data demands beyond what the VM hosts) loads into an
        // already-trapped VM instead of aborting the process: `run` then
        // reports the trap like any other failure, and the
        // audit/telemetry path still sees the run.
        if let Some(fault) = mem_fault {
            vm.status = Some(Status::Trapped(Trap::Mem {
                func: "<loader>".into(),
                fault,
            }));
            return vm;
        }
        match m.func_by_name("main") {
            Some(main) => {
                if let Err(t) = vm.push_frame(main, &[], None) {
                    vm.status = Some(Status::Trapped(t));
                }
            }
            None => {
                vm.status = Some(Status::Trapped(Trap::BadProgram(
                    "module has no `main` function".into(),
                )));
            }
        }
        vm
    }

    /// Sets the step budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    // ---- attacker API ------------------------------------------------------

    /// The attacker's arbitrary-write primitive (threat model §3).
    ///
    /// # Errors
    /// Fails only when the target is outside attacker-reachable memory.
    pub fn attacker_write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        let r = self.mem.attacker_write(addr, bytes);
        if r.is_ok() && self.rec.is_some() {
            // The corruption itself lands in the flight-recorder window
            // (first 8 bytes of the payload, little-endian).
            let mut v = [0u8; 8];
            let n = bytes.len().min(8);
            v[..n].copy_from_slice(&bytes[..n]);
            self.rec_plain(RecKind::AttackerWrite, addr, u64::from_le_bytes(v));
        }
        r
    }

    /// Arbitrary-read (information disclosure) primitive.
    ///
    /// # Errors
    /// Fails when the range is unmapped.
    pub fn attacker_read(&self, addr: u64, len: u64) -> Result<Vec<u8>, MemFault> {
        self.mem.read(addr, len)
    }

    /// Convenience: attacker write of a u64.
    ///
    /// # Errors
    /// Same as [`Vm::attacker_write`].
    pub fn attacker_write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemFault> {
        self.attacker_write(addr, &v.to_le_bytes())
    }

    /// Address of a global by name.
    pub fn global_addr(&self, name: &str) -> Option<u64> {
        let gid = self.img.module.global_by_name(name)?;
        Some(self.global_addrs[gid.0 as usize])
    }

    /// Address of the innermost live stack slot for a variable name.
    pub fn local_addr(&self, name: &str) -> Option<u64> {
        for fr in self.frames.iter().rev() {
            for (vid, addr) in fr.locals.iter().rev() {
                if self.img.module.var(*vid).name == name {
                    return Some(*addr);
                }
            }
        }
        None
    }

    /// The code address of a function by name (what an attacker writes
    /// into a hijacked code pointer).
    pub fn func_addr(&self, name: &str) -> Option<u64> {
        let fid = self.img.module.func_by_name(name)?;
        Some(func_address(&self.img.module, fid))
    }

    /// Live heap allocations as (addr, size).
    pub fn heap_live(&self) -> &[(u64, u64)] {
        &self.alloc.live
    }

    /// Freed heap allocations as (addr, size).
    pub fn heap_freed(&self) -> &[(u64, u64)] {
        &self.alloc.freed
    }

    /// The in-memory return-address slot of the innermost frame, when the
    /// shadow stack is disabled (attack experiments).
    pub fn current_ret_slot(&self) -> Option<u64> {
        self.frames.last().and_then(|f| f.ret_slot).map(|(slot, _)| slot)
    }

    // ---- execution ---------------------------------------------------------

    /// Runs to completion.
    pub fn run(&mut self) -> ExecResult {
        self.dispatch(None);
        self.result()
    }

    /// Runs until `name` is entered (paused at its first instruction), or
    /// to completion.
    pub fn run_to_function(&mut self, name: &str) -> RunStop {
        let Some(fid) = self.img.module.func_by_name(name) else {
            return RunStop::Done(Status::Trapped(Trap::BadProgram(format!(
                "no function `{name}`"
            ))));
        };
        self.dispatch(Some(fid));
        match &self.status {
            None => RunStop::Entered,
            Some(s) => RunStop::Done(s.clone()),
        }
    }

    /// Continues a paused run to completion.
    pub fn finish(&mut self) -> ExecResult {
        self.dispatch(None);
        self.result()
    }

    /// Routes a (possibly resumed) run to the image's execution engine.
    fn dispatch(&mut self, watch: Option<FuncId>) {
        match self.img.exec {
            ExecBackend::Interp => self.run_internal(watch),
            ExecBackend::Compiled => self.run_compiled(watch),
        }
    }

    /// The accumulated result (meaningful once finished; callable anytime).
    pub fn result(&self) -> ExecResult {
        ExecResult {
            status: self.status.clone().unwrap_or(Status::Trapped(Trap::FuelExhausted)),
            output: self.output.clone(),
            events: self.events.clone(),
            cycles: self.cycles,
            insts: self.insts,
            pac_signs: self.pac.sign_count,
            pac_auths: self.pac.auth_count,
            site_counts: self.site_counts,
            opclass_counts: self.opclass,
            audit: self.audit.clone(),
            attr: self.attr_profile(),
            incident: self.rec.as_deref().and_then(|r| r.incident.clone()),
        }
    }

    fn run_internal(&mut self, watch: Option<FuncId>) {
        let _span = rsti_telemetry::global().span(Phase::VmRun);
        let mut skip_check = std::mem::take(&mut self.paused);
        let Some(w) = watch else {
            // No watchpoint (the measurement path): a tight step loop with
            // no per-step entry check.
            while self.status.is_none() {
                if let Err(t) = self.step() {
                    self.status = Some(Status::Trapped(t));
                }
            }
            self.flush_telemetry();
            return;
        };
        while self.status.is_none() {
            if !skip_check {
                if let Some(fr) = self.frames.last() {
                    if fr.func == w && fr.block == 0 && fr.idx == 0 {
                        self.paused = true;
                        return; // paused at function entry
                    }
                }
            }
            skip_check = false;
            if let Err(t) = self.step() {
                self.status = Some(Status::Trapped(t));
            }
        }
        self.flush_telemetry();
    }

    // ---- attribution hooks -------------------------------------------------
    //
    // Every hook below sits behind an `attr.is_some()` branch at its call
    // site (or begins with one), so with attribution off the profiler's
    // entire footprint is a few never-taken branches — the inertness the
    // vm_throughput guardrail asserts.

    /// Charges the accounting delta since the last checkpoint to the
    /// current (innermost) function. Called at the frame transitions both
    /// engines share: frame push, return, and end of run.
    fn attr_checkpoint(&mut self) {
        let cur = self.frames.last().map(|f| f.func.0 as usize);
        let (cycles, insts) = (self.cycles, self.insts);
        let (signs, auths) = (self.pac.sign_count, self.pac.auth_count);
        let Some(a) = self.attr.as_deref_mut() else { return };
        if let Some(fi) = cur {
            let f = &mut a.funcs[fi];
            f.cycles += cycles - a.last_cycles;
            f.insts += insts - a.last_insts;
            f.signs += signs - a.last_signs;
            f.auths += auths - a.last_auths;
        }
        a.last_cycles = cycles;
        a.last_insts = insts;
        a.last_signs = signs;
        a.last_auths = auths;
    }

    /// Takes a call-stack sample when `cycles` has crossed the sampling
    /// boundary. Deterministic: the cycle model is deterministic and both
    /// engines call this at the same accounting points (after each per-op
    /// charge and after each block-transfer charge), so the sample set is
    /// a pure function of the image.
    fn attr_maybe_sample(&mut self) {
        let cycles = self.cycles;
        {
            let Some(a) = self.attr.as_deref_mut() else { return };
            if cycles < a.next_sample {
                return;
            }
        }
        let path: Vec<u32> = self.frames.iter().map(|f| f.func.0).collect();
        let a = self.attr.as_deref_mut().expect("checked above");
        *a.samples.entry(path).or_insert(0) += 1;
        a.n_samples += 1;
        a.next_sample = (cycles / a.sample_every + 1) * a.sample_every;
    }

    /// The interpreter's per-instruction path with observation (attribution
    /// and/or the flight recorder) on: sample check, then — for PAC-family
    /// ops — check-site resolution, recorder staging, and per-site
    /// accounting around the execution. Outlined so `step`'s hot loop
    /// stays unchanged in shape.
    #[inline(never)]
    fn exec_inst_obs(
        &mut self,
        inst: &Inst,
        func: u32,
        block: u32,
        idx: u32,
        cost: u64,
    ) -> Result<(), Trap> {
        self.attr_maybe_sample();
        if opcode_class(inst) != OPCLASS_PAC {
            return self.exec_inst(inst);
        }
        // Both observers share one site table (built identically); resolve
        // through whichever is live.
        let sid = self
            .attr
            .as_deref()
            .map(|a| &a.site_map)
            .or_else(|| self.rec.as_deref().map(|r| &r.site_map))
            .and_then(|m| m.get(&(func, block, idx)).copied())
            .unwrap_or(NO_SITE);
        if let Some(r) = self.rec.as_deref_mut() {
            // Stage the failing-op site for the events this op records.
            r.cur_site = sid;
        }
        if self.attr.is_none() || sid == NO_SITE {
            return self.exec_inst(inst);
        }
        let (s0, a0) = (self.pac.sign_count, self.pac.auth_count);
        let r = self.exec_inst(inst);
        self.attr_record_site(sid, cost, s0, a0, r.is_err());
        r
    }

    /// Adds one execution of check site `sid` (shared by both engines;
    /// the compiled slow path calls this with the site id baked into its
    /// `OpCharge` stream).
    pub(crate) fn attr_record_site(&mut self, sid: u32, cost: u64, s0: u64, a0: u64, trapped: bool) {
        let (signs, auths) = (self.pac.sign_count, self.pac.auth_count);
        let a = self.attr.as_deref_mut().expect("attr on");
        let st = &mut a.site_stats[sid as usize];
        st.execs += 1;
        st.cycles += cost;
        st.signs += signs - s0;
        st.auths += auths - a0;
        if trapped {
            st.traps += 1;
        }
    }

    /// End-of-run attribution: charge the tail delta to the function the
    /// run ended in, and attribute the trap (if any) to it.
    fn attr_finalize(&mut self) {
        if self.attr.is_none() {
            return;
        }
        self.attr_checkpoint();
        let cur = self.frames.last().map(|f| f.func.0 as usize);
        let trapped = matches!(self.status, Some(Status::Trapped(_)));
        if let (Some(a), Some(fi), true) = (self.attr.as_deref_mut(), cur, trapped) {
            a.funcs[fi].traps += 1;
        }
    }

    /// Builds the public profile from the run's attribution state.
    fn attr_profile(&self) -> Option<Box<AttrProfile>> {
        let a = self.attr.as_deref()?;
        let m = &self.img.module;
        let sites: Vec<SiteAttr> = a
            .sites
            .iter()
            .zip(&a.site_stats)
            .map(|(site, st)| SiteAttr {
                site: site.clone(),
                execs: st.execs,
                cycles: st.cycles,
                signs: st.signs,
                auths: st.auths,
                traps: st.traps,
            })
            .collect();
        let mut funcs: Vec<FuncAttr> = m
            .funcs
            .iter()
            .zip(&a.funcs)
            .map(|(f, st)| FuncAttr {
                name: f.name.clone(),
                calls: st.calls,
                cycles: st.cycles,
                insts: st.insts,
                pac_signs: st.signs,
                pac_auths: st.auths,
                traps: st.traps,
                pac_cycles: 0,
                pp_cycles: 0,
                incl: st.incl.clone(),
            })
            .collect();
        // Per-function PAC vs pp-check cycle split, summed from the sites.
        for s in &sites {
            let f = &mut funcs[s.site.func as usize];
            if s.site.kind.starts_with("pp_") {
                f.pp_cycles += s.cycles;
            } else {
                f.pac_cycles += s.cycles;
            }
        }
        let mut folded: Vec<(Vec<String>, u64)> = a
            .samples
            .iter()
            .map(|(path, &n)| {
                let names: Vec<String> = path
                    .iter()
                    .map(|&fi| {
                        m.funcs
                            .get(fi as usize)
                            .map_or_else(|| format!("<f{fi}>"), |f| f.name.clone())
                    })
                    .collect();
                (names, n)
            })
            .collect();
        folded.sort();
        Some(Box::new(AttrProfile {
            sample_every: a.sample_every,
            samples: a.n_samples,
            funcs,
            sites,
            folded,
        }))
    }

    // ---- flight-recorder hooks ---------------------------------------------
    //
    // Every call site below guards on `rec.is_some()`, so with the
    // recorder off (the default) its entire footprint is a few never-taken
    // branches — the same inertness discipline as the attribution hooks.
    // Events fire either from code both engines share (push_frame,
    // exec_term, store_typed, the attacker API) or from mirrored points
    // with identical arguments (the interpreter's PAC/Load/Free arms and
    // the compiled closures), so recorded windows are engine-identical.

    /// Records one PAC-family event at the currently staged check site.
    #[inline(never)]
    fn rec_push(&mut self, kind: RecKind, value: u64, modifier: u64, key: u8) {
        let cycle = self.cycles;
        let func = self.frames.last().map_or(u32::MAX, |f| f.func.0);
        let r = self.rec.as_deref_mut().expect("recorder armed");
        let site = r.cur_site;
        r.push(RecEvent { cycle, kind, func, site, addr: 0, value, modifier, key });
    }

    /// Records one siteless event (load/store/free/attacker-write).
    #[inline(never)]
    fn rec_plain(&mut self, kind: RecKind, addr: u64, value: u64) {
        let cycle = self.cycles;
        let func = self.frames.last().map_or(u32::MAX, |f| f.func.0);
        let r = self.rec.as_deref_mut().expect("recorder armed");
        r.push(RecEvent {
            cycle,
            kind,
            func,
            site: NO_SITE,
            addr,
            value,
            modifier: 0,
            key: KEY_NONE,
        });
    }

    /// Records a scope transition for `fid` (the entered/exited function).
    #[inline(never)]
    fn rec_scope(&mut self, kind: RecKind, fid: FuncId) {
        let cycle = self.cycles;
        let r = self.rec.as_deref_mut().expect("recorder armed");
        r.push(RecEvent {
            cycle,
            kind,
            func: fid.0,
            site: NO_SITE,
            addr: 0,
            value: 0,
            modifier: 0,
            key: KEY_NONE,
        });
    }

    /// Synthesizes the structured [`Incident`] for the first detection
    /// trap of a recorded run: records the trap's own `auth_fail` event,
    /// resolves the sign-site lineage of the presented value from the
    /// ring, and freezes the scope timeline and event window. Cold — a
    /// detection ends the run.
    #[cold]
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn rec_synthesize(
        &mut self,
        trap: &'static str,
        inst: &'static str,
        pac_site: &'static str,
        modifier: u64,
        value: u64,
        key: u8,
        found: u64,
        expected: u64,
    ) {
        // The trap itself closes the window.
        self.rec_push(RecKind::AuthFail, value, modifier, key);
        let img = self.img;
        let m = &img.module;
        let func = self.cur_func_name();
        let line = self.cur_line();
        let cycle = self.cycles;
        let detail = self.audit.last().map(|a| a.detail.clone()).unwrap_or_default();
        let Some(r) = self.rec.as_deref() else { return };
        if r.incident.is_some() {
            return; // first detection only
        }
        let events = r.in_order();
        let resolve = |e: &RecEvent| IncidentEvent {
            cycle: e.cycle,
            kind: e.kind.name().to_string(),
            func: m
                .funcs
                .get(e.func as usize)
                .map_or_else(|| "<none>".to_string(), |f| f.name.clone()),
            site: site_label(&r.sites, e.site),
            addr: e.addr,
            value: e.value,
            modifier: e.modifier,
            key: key_label(e.key).to_string(),
        };
        // Lineage: the last sign event that produced exactly the bits the
        // failing check authenticated. A replayed signature resolves to
        // its original mint (exposing the modifier it was minted for); a
        // raw overwrite resolves to nothing.
        let lineage = events
            .iter()
            .rev()
            .find(|e| e.kind == RecKind::Sign && e.value == value && value != 0)
            .map(|e| SignLineage {
                site: site_label(&r.sites, e.site),
                func: m
                    .funcs
                    .get(e.func as usize)
                    .map_or_else(|| "<none>".to_string(), |f| f.name.clone()),
                cycle: e.cycle,
                modifier: e.modifier,
                key: key_label(e.key).to_string(),
            });
        let scope_timeline: Vec<IncidentEvent> = events
            .iter()
            .filter(|e| {
                matches!(e.kind, RecKind::ScopeEnter | RecKind::ScopeExit | RecKind::Free)
            })
            .map(&resolve)
            .collect();
        let window: Vec<IncidentEvent> = events.iter().map(&resolve).collect();
        let inc = Incident {
            schema: INCIDENT_SCHEMA,
            mechanism: img
                .mechanism
                .map_or_else(|| "baseline".to_string(), |mm| mm.name().to_string()),
            enforcement: match img.backend {
                Backend::PacInPointer => "pac_in_pointer",
                Backend::MacTable => "mac_table",
            }
            .to_string(),
            trap: trap.to_string(),
            cycle,
            func,
            line,
            check_site: site_label(&r.sites, r.cur_site),
            check_kind: inst.to_string(),
            pac_site: pac_site.to_string(),
            presented_modifier: modifier,
            presented_key: key_label(key).to_string(),
            presented_value: value,
            found_pac: found,
            expected_pac: expected,
            lineage,
            scope_timeline,
            window,
            dropped_events: r.dropped,
            detail,
        };
        self.rec.as_deref_mut().expect("recorder armed").incident = Some(Box::new(inc));
    }

    /// Adds the run's accumulated counts into the global collector and
    /// emits the end-of-run event. Runs once per finished execution; a
    /// disabled collector reduces this to two branches.
    fn flush_telemetry(&mut self) {
        if self.telemetry_flushed || self.status.is_none() {
            return;
        }
        self.telemetry_flushed = true;
        self.attr_finalize();
        let tel = rsti_telemetry::global();
        if !tel.is_enabled() {
            return;
        }
        self.pac.flush_telemetry();
        if let Some(a) = self.attr.as_deref() {
            tel.add(CounterId::VmAttrRuns, 1);
            tel.add(CounterId::VmAttrSamples, a.n_samples);
        }
        tel.add(
            match self.img.exec {
                ExecBackend::Interp => CounterId::VmRunsInterp,
                ExecBackend::Compiled => CounterId::VmRunsCompiled,
            },
            1,
        );
        tel.add(CounterId::VmPacSigns, self.pac.sign_count);
        tel.add(CounterId::VmPacAuths, self.pac.auth_count);
        tel.add(CounterId::VmAuthFailures, self.pac.fail_count);
        tel.add(CounterId::VmInstMem, self.opclass[OPCLASS_MEM]);
        tel.add(CounterId::VmInstArith, self.opclass[OPCLASS_ARITH]);
        tel.add(CounterId::VmInstCall, self.opclass[OPCLASS_CALL]);
        tel.add(CounterId::VmInstPac, self.opclass[OPCLASS_PAC]);
        tel.add(CounterId::VmInstBranch, self.opclass[OPCLASS_BRANCH]);
        tel.add(CounterId::VmInstOther, self.opclass[OPCLASS_OTHER]);
        let status = match &self.status {
            Some(Status::Exited(code)) => {
                format!("exit: {code}")
            }
            Some(Status::Trapped(t)) => {
                tel.add(CounterId::VmTraps, 1);
                format!("trap: {t}")
            }
            None => unreachable!("guarded above"),
        };
        tel.emit(&Event::RunEnd {
            insts: self.insts,
            cycles: self.cycles,
            pac_signs: self.pac.sign_count,
            pac_auths: self.pac.auth_count,
            status: &status,
        });
    }

    /// Builds the audit record for an RSTI detection trap, appends it to
    /// the run's audit log, and forwards it to the global collector.
    ///
    /// Cold and out of line, like every failure constructor below: a
    /// detection ends the run, and keeping the string formatting out of
    /// `exec_inst` keeps that function small enough that the hot
    /// sign/auth/eval helpers stay inlined into it.
    #[cold]
    #[inline(never)]
    fn record_audit(&mut self, site: &'static str, inst: &'static str, modifier: u64, detail: String) {
        let rec = AuditRecord {
            mechanism: self
                .img
                .mechanism
                .map_or_else(|| "baseline".to_string(), |m| m.name().to_string()),
            modifier,
            site: site.to_string(),
            func: self.cur_func_name(),
            line: self.cur_line(),
            inst: inst.to_string(),
            detail,
        };
        rsti_telemetry::global().record_violation(&rec);
        self.audit.push(rec);
    }

    /// PAC mismatch on an `aut` (pac-in-pointer backend). `value`/`key`
    /// are the presented bits and key — the flight recorder's forensic
    /// inputs when it is armed.
    #[cold]
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn pac_auth_fail(
        &mut self,
        inst: &'static str,
        site: PacSite,
        modifier: u64,
        found: u64,
        expected: u64,
        value: u64,
        key: u8,
    ) -> Trap {
        self.record_audit(
            site_name(site),
            inst,
            modifier,
            format!("found PAC {found:#x}, expected {expected:#x}"),
        );
        if self.rec.is_some() {
            self.rec_synthesize(
                "pac_auth_failure",
                inst,
                site_name(site),
                modifier,
                value,
                key,
                found,
                expected,
            );
        }
        Trap::PacAuthFailure {
            func: self.cur_func_name(),
            line: self.cur_line(),
            site,
            found_pac: found,
            expected_pac: expected,
        }
    }

    /// Missing or stale MAC on an `aut` (MAC-table backend).
    #[cold]
    #[inline(never)]
    fn mac_stale_fail(
        &mut self,
        inst: &'static str,
        site: PacSite,
        modifier: u64,
        expected: u64,
        value: u64,
        key: u8,
    ) -> Trap {
        self.record_audit(
            site_name(site),
            inst,
            modifier,
            format!("MAC missing or stale, expected {expected:#x}"),
        );
        if self.rec.is_some() {
            self.rec_synthesize(
                "pac_auth_failure",
                inst,
                site_name(site),
                modifier,
                value,
                key,
                0,
                expected,
            );
        }
        Trap::PacAuthFailure {
            func: self.cur_func_name(),
            line: self.cur_line(),
            site,
            found_pac: 0,
            expected_pac: expected,
        }
    }

    /// Pointer-to-pointer metadata failure.
    #[cold]
    #[inline(never)]
    fn pp_fail(
        &mut self,
        inst: &'static str,
        modifier: u64,
        f: PpFail,
        value: u64,
        key: u8,
    ) -> Trap {
        let (detail, reason) = match f {
            PpFail::Conflict { ce, had } => (
                format!("CE {ce} metadata conflict (had {had:#x})"),
                format!("CE {ce} metadata conflict"),
            ),
            PpFail::NotRegistered { ce } => (
                format!("CE {ce} not registered"),
                format!("pp_sign: CE {ce} not registered"),
            ),
            PpFail::MissingTag => (
                "missing CE tag (raw or corrupted pointer)".to_string(),
                "pp_auth: missing CE tag (raw or corrupted pointer)".to_string(),
            ),
            PpFail::NotInStore { ce } => (
                format!("CE {ce} not in metadata store"),
                format!("pp_auth: CE {ce} not in metadata store"),
            ),
        };
        self.record_audit("pp_metadata", inst, modifier, detail);
        if self.rec.is_some() {
            self.rec_synthesize("pp_auth_failure", inst, "pp_metadata", modifier, value, key, 0, 0);
        }
        Trap::PpAuthFailure { func: self.cur_func_name(), reason }
    }

    fn cur_func_name(&self) -> String {
        self.frames
            .last()
            .and_then(|f| self.img.module.funcs.get(f.func.0 as usize))
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<none>".into())
    }

    fn cur_line(&self) -> u32 {
        let Some(fr) = self.frames.last() else { return 0 };
        let Some(f) = self.img.module.funcs.get(fr.func.0 as usize) else { return 0 };
        f.blocks
            .get(fr.block)
            .and_then(|b| b.insts.get(fr.idx))
            .and_then(|n| n.loc)
            .map(|l| l.line)
            .unwrap_or(0)
    }

    fn push_frame(
        &mut self,
        fid: FuncId,
        args: &[RtVal],
        ret_to: Option<ValueId>,
    ) -> Result<(), Trap> {
        if self.frames.len() >= 4096 {
            return Err(Trap::StackOverflow);
        }
        // Frame transition: charge the delta since the last checkpoint to
        // the (outgoing) caller. Both engines call through here, at the
        // same accounting state, so attribution is engine-independent.
        if self.attr.is_some() {
            self.attr_checkpoint();
        }
        let img = self.img;
        let Some(f) = img.module.funcs.get(fid.0 as usize) else {
            return Err(oob("function", fid.0 as usize));
        };
        if f.is_external {
            return Err(external_frame(&f.name));
        }
        let mut frame = self.frame_pool.pop().unwrap_or_else(Frame::blank);
        let nvals = f.value_types.len();
        // A fresh, globally unique generation invalidates every slot the
        // window inherits — stale tags (from popped frames or recycled
        // buffers) can never match, so nothing needs a memset.
        self.gen_counter += 1;
        frame.gen = self.gen_counter;
        let base = self.reg_top;
        if self.regs.len() < base + nvals {
            // Extends only past the high-water mark: steady-state
            // call/return re-covers already-initialized slots for free.
            self.regs.resize(base + nvals, (0, RtVal::I(0)));
        }
        frame.reg_base = base;
        if frame.alloca_cache.len() < nvals {
            frame.alloca_cache.resize(nvals, (0, 0));
        }
        frame.locals.clear();
        // Extra arguments (a hijacked call with a mismatched signature, or
        // varargs) are silently dropped, as the AAPCS would leave them in
        // unread registers.
        for (i, &a) in args.iter().enumerate() {
            if let Some((pv, _)) = f.params.get(i) {
                self.regs[base + pv.0 as usize] = (frame.gen, a);
            }
        }
        // Without the shadow stack, spill a return token into stack
        // memory, like a saved LR — attacker-reachable by construction.
        let ret_slot = if self.img.shadow_stack {
            None
        } else {
            let caller_code = self
                .frames
                .last()
                .map(|fr| func_address(&self.img.module, fr.func))
                .unwrap_or(layout::CODE_BASE);
            let slot = self.stack_top;
            self.stack_top += 8;
            self.mem
                .write_u64(slot, caller_code)
                .map_err(|e| Trap::Mem { func: String::from("<prologue>"), fault: e })?;
            Some((slot, caller_code))
        };
        frame.func = fid;
        frame.block = 0;
        frame.idx = 0;
        frame.stack_mark = self.stack_top - if ret_slot.is_some() { 8 } else { 0 };
        frame.ret_to = ret_to;
        frame.ret_slot = ret_slot;
        frame.entry_cycles = self.cycles;
        if let Some(a) = self.attr.as_deref_mut() {
            a.funcs[fid.0 as usize].calls += 1;
        }
        self.reg_top = base + nvals;
        self.reg_base = base;
        self.cur_gen = frame.gen;
        self.frames.push(frame);
        if self.rec.is_some() {
            // Scope entry, recorded in the one prologue both engines share.
            self.rec_scope(RecKind::ScopeEnter, fid);
        }
        Ok(())
    }

    /// Re-derives the register-window mirrors after a frame pop: the
    /// popped frame's window is released and the caller's becomes
    /// current.
    #[inline]
    fn sync_reg_window(&mut self, popped_base: usize) {
        self.reg_top = popped_base;
        match self.frames.last() {
            Some(fr) => {
                self.reg_base = fr.reg_base;
                self.cur_gen = fr.gen;
            }
            None => {
                self.reg_base = 0;
                self.cur_gen = 0;
            }
        }
    }

    /// Returns a popped frame's buffers to the pool for reuse.
    fn recycle(&mut self, frame: Frame) {
        if self.frame_pool.len() < 64 {
            self.frame_pool.push(frame);
        }
    }

    fn eval(&self, op: &Operand) -> Result<RtVal, Trap> {
        Ok(match op {
            Operand::Value(v) => {
                let Some(&(tag, val)) = self.regs.get(self.reg_base + v.0 as usize) else {
                    return Err(oob("register", v.0 as usize));
                };
                if tag != self.cur_gen {
                    return Err(Trap::BadProgram(format!("use of undefined {v}")));
                }
                val
            }
            Operand::ConstInt(v, _) => RtVal::I(*v),
            Operand::ConstFloat(bits, _) => RtVal::F(f64::from_bits(*bits)),
            Operand::Null(_) => RtVal::P(0),
            Operand::FuncAddr(fid, _) => RtVal::P(func_address(&self.img.module, *fid)),
            Operand::GlobalAddr(gid, _) => match self.global_addrs.get(gid.0 as usize) {
                Some(&a) => RtVal::P(a),
                None => return Err(oob("global", gid.0 as usize)),
            },
            Operand::Str(sid, _) => match self.str_addrs.get(sid.0 as usize) {
                Some(&a) => RtVal::P(a),
                None => return Err(oob("string", sid.0 as usize)),
            },
        })
    }

    #[inline]
    fn set(&mut self, v: ValueId, val: RtVal) {
        let i = self.reg_base + v.0 as usize;
        if i >= self.regs.len() {
            // Malformed image: a result id past the declared value table.
            // Grow the register file rather than abort the process.
            grow_slots(&mut self.regs, i, (0, RtVal::I(0)));
        }
        self.regs[i] = (self.cur_gen, val);
        if i >= self.reg_top {
            self.reg_top = i + 1;
        }
    }

    #[inline]
    fn as_ptr(&self, v: RtVal) -> Result<u64, Trap> {
        match v {
            RtVal::P(p) => Ok(p),
            RtVal::I(i) => Ok(i as u64), // integer used as pointer (C laxity)
            RtVal::F(_) => Err(Trap::BadProgram("float used as pointer".into())),
        }
    }

    /// Checks canonical form and returns the translated address.
    #[inline(always)]
    fn deref_addr(&self, p: u64) -> Result<u64, Trap> {
        if p & self.noncanon_mask != 0 {
            // Non-canonical (PAC-carrying, poisoned, forged): hardware
            // translation faults.
            return Err(self.noncanonical_trap(p));
        }
        Ok(p & self.addr_mask)
    }

    #[cold]
    #[inline(never)]
    fn noncanonical_trap(&self, p: u64) -> Trap {
        Trap::Mem { func: self.cur_func_name(), fault: MemFault::Unmapped { addr: p } }
    }

    #[cold]
    #[inline(never)]
    fn mem_err(&self, fault: MemFault) -> Trap {
        Trap::Mem { func: self.cur_func_name(), fault }
    }

    fn load_typed(&self, addr: u64, ty: TypeId) -> Result<RtVal, Trap> {
        let m = &self.img.module;
        let v = match m.types.get(ty) {
            Type::Bool | Type::I8 => {
                let b = self.mem.read_arr::<1>(addr).map_err(|e| self.mem_err(e))?;
                RtVal::I(b[0] as i8 as i64)
            }
            Type::I16 => {
                let b = self.mem.read_arr::<2>(addr).map_err(|e| self.mem_err(e))?;
                RtVal::I(i16::from_le_bytes(b) as i64)
            }
            Type::I32 => {
                let b = self.mem.read_arr::<4>(addr).map_err(|e| self.mem_err(e))?;
                RtVal::I(i32::from_le_bytes(b) as i64)
            }
            Type::I64 => {
                let b = self.mem.read_arr::<8>(addr).map_err(|e| self.mem_err(e))?;
                RtVal::I(i64::from_le_bytes(b))
            }
            Type::F64 => {
                let b = self.mem.read_arr::<8>(addr).map_err(|e| self.mem_err(e))?;
                RtVal::F(f64::from_le_bytes(b))
            }
            Type::Ptr(_) => {
                let v = self.mem.read_u64(addr).map_err(|e| self.mem_err(e))?;
                RtVal::P(v)
            }
            other => {
                return Err(Trap::BadProgram(format!(
                    "load of unsupported type {other:?}"
                )))
            }
        };
        Ok(v)
    }

    fn store_typed(&mut self, addr: u64, ty: TypeId, v: RtVal) -> Result<(), Trap> {
        let img = self.img;
        let m = &img.module;
        // All scalar stores are <= 8 bytes; each arm writes its exact
        // width so the range check folds to one comparison.
        let r = match (m.types.get(ty), v) {
            (Type::Bool | Type::I8, RtVal::I(i)) => self.mem.write_arr::<1>(addr, [i as u8]),
            (Type::I16, RtVal::I(i)) => self.mem.write_arr::<2>(addr, (i as i16).to_le_bytes()),
            (Type::I32, RtVal::I(i)) => self.mem.write_arr::<4>(addr, (i as i32).to_le_bytes()),
            (Type::I64, RtVal::I(i)) => self.mem.write_arr::<8>(addr, i.to_le_bytes()),
            (Type::F64, RtVal::F(f)) => self.mem.write_arr::<8>(addr, f.to_le_bytes()),
            (Type::F64, RtVal::I(i)) => self.mem.write_arr::<8>(addr, (i as f64).to_le_bytes()),
            (Type::Ptr(_), v) => {
                let p = self.as_ptr(v)?;
                let w = self.mem.write_arr::<8>(addr, p.to_le_bytes());
                if w.is_ok() && self.rec.is_some() {
                    // A pointer slot changed hands — the lifecycle event
                    // lineage resolution walks back through. (The compiled
                    // engine's inlined ptr-store closure mirrors this.)
                    self.rec_plain(RecKind::Store, addr, p);
                }
                w
            }
            (t, v) => {
                return Err(Trap::BadProgram(format!("store of {v:?} into {t:?}")))
            }
        };
        r.map_err(|e| self.mem_err(e))
    }

    /// The type a store writes through (pointee of the ptr operand).
    fn store_slot_type(&self, ptr_op: &Operand, value: RtVal) -> TypeId {
        let fr = self.frames.last().expect("frame");
        let f = &self.img.module.funcs[fr.func.0 as usize];
        let pty = match ptr_op {
            Operand::Value(v) => Some(f.value_type(*v)),
            Operand::GlobalAddr(_, t) | Operand::Null(t) | Operand::Str(_, t) => Some(*t),
            _ => None,
        };
        pty.and_then(|p| self.img.module.types.pointee(p)).unwrap_or(match value {
            RtVal::F(_) => self.img.module.types.f64(),
            _ => self.img.module.types.i64(),
        })
    }

    // The `None` arm is the fast path the optimizer's precomputed-modifier
    // pass aims for: no operand eval, no canonicalization — the modifier
    // is already final.
    #[inline]
    fn modifier_with_loc(&self, modifier: u64, loc: &Option<Operand>) -> Result<u64, Trap> {
        match loc {
            None => Ok(modifier),
            Some(l) => {
                let a = self.as_ptr(self.eval(l)?)?;
                Ok(modifier ^ self.img.va.canonical(a))
            }
        }
    }

    /// Executes the rest of the current basic block: straight-line
    /// instructions up to the terminator, stopping early when control
    /// transfers (a call pushes a frame), the run status is decided (an
    /// external `exit`), or an instruction traps.
    ///
    /// Executing a block per call — rather than one instruction — hoists
    /// the function/block lookups out of the per-instruction path; the
    /// instruction and cycle counters advance exactly as they would under
    /// single-stepping, so every observable total is unchanged.
    ///
    /// # Errors
    /// Returns the trap that stopped execution.
    pub fn step(&mut self) -> Result<(), Trap> {
        // `self.img` is a `&'img Image` — copying the reference out gives
        // borrows of the instruction stream that live independently of
        // `&mut self`, so dispatch borrows each `Inst`/`Terminator` in
        // place instead of cloning it.
        let img = self.img;
        let depth = self.frames.len();
        let fr = self.frames.last().expect("active frame");
        let (cur_func, cur_block) = (fr.func.0, fr.block as u32);
        let f = &img.module.funcs[fr.func.0 as usize];
        let Some(blk) = f.blocks.get(fr.block) else {
            // A malformed image can branch past the last block; report it
            // as a trap so the run (and its audit log) completes normally.
            return Err(missing_block(fr.block, &f.name));
        };
        let mut idx = fr.idx;

        // The observation check is hoisted out of the per-instruction
        // loop: with the profiler and recorder off (the default), the hot
        // loop below is exactly the pre-profiler loop — two pointer-null
        // tests per block, zero per-instruction cost.
        if self.attr.is_none() && self.rec.is_none() {
            while idx < blk.insts.len() {
                if self.insts >= self.fuel {
                    return Err(Trap::FuelExhausted);
                }
                self.insts += 1;
                let inst = &blk.insts[idx].inst;
                idx += 1;
                if self.trace_enabled {
                    self.opclass[opcode_class(inst)] += 1;
                }
                // Commit the new index before executing: calls resume the
                // caller here, and trap diagnostics read it.
                self.frames.last_mut().expect("active frame").idx = idx;
                self.cycles += img.cost.cost(inst);
                self.exec_inst(inst)?;
                if self.frames.len() != depth || self.status.is_some() {
                    // Control left this block (call push / program exit):
                    // the cached block slice no longer describes the
                    // current frame, so hand back to the driver loop.
                    return Ok(());
                }
            }
        } else {
            while idx < blk.insts.len() {
                if self.insts >= self.fuel {
                    return Err(Trap::FuelExhausted);
                }
                self.insts += 1;
                let inst = &blk.insts[idx].inst;
                let node_idx = idx as u32;
                idx += 1;
                if self.trace_enabled {
                    self.opclass[opcode_class(inst)] += 1;
                }
                self.frames.last_mut().expect("active frame").idx = idx;
                let cost = img.cost.cost(inst);
                self.cycles += cost;
                self.exec_inst_obs(inst, cur_func, cur_block, node_idx, cost)?;
                if self.frames.len() != depth || self.status.is_some() {
                    return Ok(());
                }
            }
        }

        self.charge_block_transfer()?;
        self.exec_term(&blk.term)
    }

    /// The block entry/exit charge: fuel check plus instruction, opcode-
    /// class, and cycle accounting for a terminator. Both engines fund
    /// every block transfer through this one site, so interpreted and
    /// compiled runs report identical `cycles`/`insts` totals by
    /// construction.
    #[inline]
    fn charge_block_transfer(&mut self) -> Result<(), Trap> {
        if self.insts >= self.fuel {
            return Err(Trap::FuelExhausted);
        }
        self.insts += 1;
        if self.trace_enabled {
            self.opclass[OPCLASS_BRANCH] += 1;
        }
        self.cycles += self.img.cost.branch;
        if self.attr.is_some() {
            self.attr_maybe_sample();
        }
        Ok(())
    }

    fn jump(&mut self, bb: rsti_ir::BlockId) {
        let fr = self.frames.last_mut().expect("frame");
        fr.block = bb.0 as usize;
        fr.idx = 0;
    }

    fn exec_term(&mut self, t: &Terminator) -> Result<(), Trap> {
        match t {
            Terminator::Br(b) => {
                self.jump(*b);
                Ok(())
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                let c = self.eval(cond)?;
                let taken = match c {
                    RtVal::I(v) => v != 0,
                    RtVal::P(p) => p != 0,
                    RtVal::F(f) => f != 0.0,
                };
                self.jump(if taken { *then_bb } else { *else_bb });
                Ok(())
            }
            Terminator::Ret(v) => {
                // Frame transition: charge the delta (return-terminator
                // cost included — `charge_block_transfer` already ran) to
                // the returning function before its frame pops.
                if self.attr.is_some() {
                    self.attr_checkpoint();
                }
                let val = match v {
                    Some(op) => Some(self.eval(op)?),
                    None => None,
                };
                // Without a shadow stack, the epilogue loads the return
                // address from memory. A corrupted value redirects control
                // — the ROP surface the paper's §3 assumption closes.
                if let Some((slot, expected)) = self.frames.last().and_then(|f| f.ret_slot) {
                    let found = self.mem.read_u64(slot).map_err(|e| self.mem_err(e))?;
                    if found != expected {
                        let fr = self.frames.pop().expect("frame");
                        self.stack_top = fr.stack_mark;
                        self.sync_reg_window(fr.reg_base);
                        if self.rec.is_some() {
                            self.rec_scope(RecKind::ScopeExit, fr.func);
                        }
                        self.recycle(fr);
                        let target = self.img.va.canonical(found);
                        return match resolve_code_addr(&self.img.module, target) {
                            Some((fid, true)) => {
                                let name = self.img.module.funcs[fid.0 as usize].name.clone();
                                let ret = self.img.module.funcs[fid.0 as usize].sig.ret;
                                let _ = self.external_call(&name, &[], ret);
                                // The "gadget" returns into undefined state.
                                self.status = Some(Status::Trapped(Trap::CallNonFunction {
                                    func: name,
                                    target,
                                }));
                                Ok(())
                            }
                            Some((fid, false)) => self.push_frame(fid, &[], None),
                            None => Err(Trap::Mem {
                                func: self.cur_func_name(),
                                fault: MemFault::Unmapped { addr: found },
                            }),
                        };
                    }
                }
                let fr = self.frames.pop().expect("frame");
                self.stack_top = fr.stack_mark;
                self.sync_reg_window(fr.reg_base);
                if let Some(a) = self.attr.as_deref_mut() {
                    // Completed activation: inclusive cycles, entry→return.
                    a.funcs[fr.func.0 as usize].incl.record(self.cycles - fr.entry_cycles);
                }
                if self.rec.is_some() {
                    // Scope exit, in the one epilogue both engines share
                    // (the compiled engine defers `Ret` to `exec_term`).
                    self.rec_scope(RecKind::ScopeExit, fr.func);
                }
                if self.frames.is_empty() {
                    let code = match val {
                        Some(RtVal::I(i)) => i,
                        Some(RtVal::P(p)) => p as i64,
                        Some(RtVal::F(f)) => f as i64,
                        None => 0,
                    };
                    self.status = Some(Status::Exited(code));
                } else if let Some(rt) = fr.ret_to {
                    let i = self.reg_base + rt.0 as usize;
                    if i >= self.regs.len() {
                        grow_slots(&mut self.regs, i, (0, RtVal::I(0)));
                    }
                    self.regs[i] = match val {
                        Some(v) => (self.cur_gen, v),
                        // Void return into a slot: leave undefined.
                        None => (0, RtVal::I(0)),
                    };
                    if i >= self.reg_top {
                        self.reg_top = i + 1;
                    }
                }
                self.recycle(fr);
                Ok(())
            }
            Terminator::Unreachable => {
                Err(Trap::BadProgram(format!("reached unreachable in {}", self.cur_func_name())))
            }
        }
    }

    fn exec_inst(&mut self, inst: &Inst) -> Result<(), Trap> {
        let img = self.img;
        let m = &img.module;
        match inst {
            Inst::Alloca { result, ty, var } => {
                let fr = self.frames.last().expect("frame");
                let (tag, cached) =
                    fr.alloca_cache.get(result.0 as usize).copied().unwrap_or((0, 0));
                if tag == fr.gen {
                    self.set(*result, RtVal::P(cached));
                    return Ok(());
                }
                let size = self.tl.size_of(*ty).max(1).div_ceil(8).saturating_mul(8);
                let addr = self.stack_top;
                if addr.checked_add(size).is_none_or(|end| {
                    end >= layout::STACK_BASE + self.img.stack_size
                }) {
                    return Err(Trap::StackOverflow);
                }
                self.stack_top += size;
                // Zero the slot (fresh stack in this model).
                self.mem.write_zeros(addr, size).map_err(|e| self.mem_err(e))?;
                let var = *var;
                let fr = self.frames.last_mut().expect("frame");
                if result.0 as usize >= fr.alloca_cache.len() {
                    grow_slots(&mut fr.alloca_cache, result.0 as usize, (0, 0));
                }
                fr.alloca_cache[result.0 as usize] = (fr.gen, addr);
                if let Some(v) = var {
                    fr.locals.push((v, addr));
                }
                self.set(*result, RtVal::P(addr));
                Ok(())
            }
            Inst::Load { result, ptr, ty } => {
                let p = self.as_ptr(self.eval(ptr)?)?;
                let addr = self.deref_addr(p)?;
                let v = self.load_typed(addr, *ty)?;
                if img.backend == Backend::MacTable && m.types.is_ptr(*ty) {
                    self.last_ptr_load = Some(addr);
                }
                if self.rec.is_some() && m.types.is_ptr(*ty) {
                    if let RtVal::P(bits) = v {
                        self.rec_plain(RecKind::Load, addr, bits);
                    }
                }
                self.set(*result, v);
                Ok(())
            }
            Inst::Store { value, ptr } => {
                let v = self.eval(value)?;
                let p = self.as_ptr(self.eval(ptr)?)?;
                let addr = self.deref_addr(p)?;
                if img.backend == Backend::MacTable {
                    if let Some(mac) = self.pending_mac.take() {
                        self.mac_table.insert(addr, mac);
                    }
                }
                let slot_ty = self.store_slot_type(ptr, v);
                self.store_typed(addr, slot_ty, v)
            }
            Inst::FieldAddr { result, base, struct_id, field } => {
                let b = self.as_ptr(self.eval(base)?)?;
                let off = self.tl.field_offset(*struct_id, *field);
                self.set(*result, RtVal::P(b.wrapping_add(off)));
                Ok(())
            }
            Inst::IndexAddr { result, base, index, elem_ty } => {
                let b = self.as_ptr(self.eval(base)?)?;
                let i = match self.eval(index)? {
                    RtVal::I(i) => i,
                    RtVal::P(p) => p as i64,
                    RtVal::F(_) => {
                        return Err(Trap::BadProgram("float index".into()))
                    }
                };
                let sz = self.tl.size_of(*elem_ty).max(1) as i64;
                // Wrapping, like the pointer add: a huge index times the
                // element size is a bad *address* (faults on deref), not a
                // host panic.
                self.set(*result, RtVal::P(b.wrapping_add(i.wrapping_mul(sz) as u64)));
                Ok(())
            }
            Inst::BitCast { result, value, .. } => {
                let v = self.eval(value)?;
                self.set(*result, v);
                Ok(())
            }
            Inst::Convert { result, value, to } => {
                let v = self.eval(value)?;
                let out = match (v, m.types.get(*to)) {
                    (RtVal::I(i), Type::F64) => RtVal::F(i as f64),
                    (RtVal::F(f), Type::F64) => RtVal::F(f),
                    (RtVal::F(f), _) => RtVal::I(wrap_int(m, *to, f as i64)),
                    (RtVal::I(i), _) => RtVal::I(wrap_int(m, *to, i)),
                    (RtVal::P(p), _) => RtVal::I(wrap_int(m, *to, p as i64)),
                };
                self.set(*result, out);
                Ok(())
            }
            Inst::Bin { result, op, lhs, rhs, ty } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                let out = self.binop(*op, a, b, *ty)?;
                self.set(*result, out);
                Ok(())
            }
            Inst::Cmp { result, op, lhs, rhs } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                let r = cmp_vals(*op, a, b);
                self.set(*result, RtVal::I(r as i64));
                Ok(())
            }
            Inst::Call { result, callee, args } => {
                let mut argv = std::mem::take(&mut self.call_args);
                argv.clear();
                for a in args {
                    match self.eval(a) {
                        Ok(v) => argv.push(v),
                        Err(e) => {
                            self.call_args = argv;
                            return Err(e);
                        }
                    }
                }
                let Some(callee_f) = m.funcs.get(callee.0 as usize) else {
                    self.call_args = argv;
                    return Err(oob("function", callee.0 as usize));
                };
                let r = if callee_f.is_external {
                    let v = self.external_call(&callee_f.name, &argv, callee_f.sig.ret);
                    if let (Some(r), Some(v)) = (result, v) {
                        self.set(*r, v);
                    }
                    Ok(())
                } else {
                    self.push_frame(*callee, &argv, *result)
                };
                self.call_args = argv;
                r
            }
            Inst::CallIndirect { result, callee, args, sig } => {
                let p = self.as_ptr(self.eval(callee)?)?;
                if !self.img.va.is_canonical(p) {
                    return Err(Trap::NonCanonicalCall { func: self.cur_func_name(), ptr: p });
                }
                let target = self.img.va.canonical(p);
                let Some((fid, external)) = resolve_code_addr(m, target) else {
                    return Err(Trap::CallNonFunction {
                        func: self.cur_func_name(),
                        target,
                    });
                };
                let mut argv = std::mem::take(&mut self.call_args);
                argv.clear();
                for a in args {
                    match self.eval(a) {
                        Ok(v) => argv.push(v),
                        Err(e) => {
                            self.call_args = argv;
                            return Err(e);
                        }
                    }
                }
                let r = if external {
                    let name = m.funcs[fid.0 as usize].name.clone();
                    let v = self.external_call(&name, &argv, sig.ret);
                    if let (Some(r), Some(v)) = (result, v) {
                        self.set(*r, v);
                    }
                    Ok(())
                } else {
                    self.push_frame(fid, &argv, *result)
                };
                self.call_args = argv;
                r
            }
            Inst::Malloc { result, size, .. } => {
                let sz = match self.eval(size)? {
                    RtVal::I(i) => i.max(0) as u64,
                    RtVal::P(p) => p,
                    RtVal::F(_) => return Err(Trap::BadProgram("float malloc size".into())),
                };
                let addr = self.alloc.malloc(sz).ok_or(Trap::HeapExhausted)?;
                self.set(*result, RtVal::P(addr));
                Ok(())
            }
            Inst::Free { ptr } => {
                let p = self.as_ptr(self.eval(ptr)?)?;
                let a = self.img.va.canonical(p);
                if self.rec.is_some() {
                    self.rec_plain(RecKind::Free, a, p);
                }
                if a != 0 && !self.alloc.free(a) {
                    self.events.push(ExtEvent {
                        name: "invalid_free".into(),
                        args: vec![format!("{a:#x}")],
                        critical: false,
                    });
                }
                Ok(())
            }
            Inst::PrintInt { value } => {
                let v = self.eval(value)?;
                self.output.push(v.to_string());
                Ok(())
            }
            Inst::PrintStr { s } => {
                let Some(text) = m.strings.get(s.0 as usize) else {
                    return Err(oob("string", s.0 as usize));
                };
                self.output.push(text.clone());
                Ok(())
            }
            Inst::PacSign { result, value, key, modifier, loc, site } => {
                self.site_counts[site_index(*site)] += 1;
                let p = self.as_ptr(self.eval(value)?)?;
                let modifier = self.modifier_with_loc(*modifier, loc)?;
                match img.backend {
                    Backend::PacInPointer => {
                        let signed = self.pac.sign(key_id(*key), p, modifier);
                        if self.rec.is_some() {
                            self.rec_push(RecKind::Sign, signed, modifier, key_code(key_id(*key)));
                        }
                        self.set(*result, RtVal::P(signed));
                    }
                    Backend::MacTable => {
                        // The pointer stays canonical; the MAC is staged
                        // for the following store (or consumed by an
                        // immediate re-auth round trip).
                        self.pac.sign_count += 1;
                        let mac = self.pac.compute_pac(key_id(*key), p, modifier);
                        self.pending_mac = Some(mac);
                        if self.rec.is_some() {
                            self.rec_push(RecKind::Sign, p, modifier, key_code(key_id(*key)));
                        }
                        self.set(*result, RtVal::P(p));
                    }
                }
                Ok(())
            }
            Inst::PacAuth { result, value, key, modifier, loc, site } => {
                self.site_counts[site_index(*site)] += 1;
                let p = self.as_ptr(self.eval(value)?)?;
                let modifier = self.modifier_with_loc(*modifier, loc)?;
                match img.backend {
                    Backend::PacInPointer => match self.pac.auth(key_id(*key), p, modifier) {
                        Ok(clean) => {
                            if self.rec.is_some() {
                                self.rec_push(RecKind::Auth, p, modifier, key_code(key_id(*key)));
                            }
                            self.set(*result, RtVal::P(clean));
                            Ok(())
                        }
                        Err(e) => Err(self.pac_auth_fail(
                            "pac_auth",
                            *site,
                            modifier,
                            e.found_pac,
                            e.expected_pac,
                            p,
                            key_code(key_id(*key)),
                        )),
                    },
                    Backend::MacTable => {
                        self.pac.auth_count += 1;
                        let expected = self.pac.compute_pac(key_id(*key), p, modifier);
                        // Register-domain round trip (cast/arg re-sign)?
                        if let Some(mac) = self.pending_mac.take() {
                            if mac == expected {
                                if self.rec.is_some() {
                                    self.rec_push(
                                        RecKind::Auth,
                                        p,
                                        modifier,
                                        key_code(key_id(*key)),
                                    );
                                }
                                self.set(*result, RtVal::P(p));
                                return Ok(());
                            }
                        } else if let Some(slot) = self.last_ptr_load {
                            if self.mac_table.get(&slot) == Some(&expected) {
                                if self.rec.is_some() {
                                    self.rec_push(
                                        RecKind::Auth,
                                        p,
                                        modifier,
                                        key_code(key_id(*key)),
                                    );
                                }
                                self.set(*result, RtVal::P(p));
                                return Ok(());
                            }
                        }
                        self.pac.fail_count += 1;
                        Err(self.mac_stale_fail(
                            "pac_auth",
                            *site,
                            modifier,
                            expected,
                            p,
                            key_code(key_id(*key)),
                        ))
                    }
                }
            }
            Inst::PacStrip { result, value } => {
                self.site_counts[site_index(PacSite::ExternalStrip)] += 1;
                let p = self.as_ptr(self.eval(value)?)?;
                let stripped = self.pac.strip(p);
                if self.rec.is_some() {
                    self.rec_push(RecKind::Strip, p, 0, KEY_NONE);
                }
                self.set(*result, RtVal::P(stripped));
                Ok(())
            }
            Inst::PpAdd { ce, fe_modifier } => {
                match self.pp_table.get(ce) {
                    Some(&fe) if fe != *fe_modifier => Err(self.pp_fail(
                        "pp_add",
                        *fe_modifier,
                        PpFail::Conflict { ce: *ce as u64, had: fe },
                        0,
                        KEY_NONE,
                    )),
                    _ => {
                        self.pp_table.insert(*ce, *fe_modifier);
                        Ok(())
                    }
                }
            }
            Inst::PpSign { result, value, ce, key } => {
                let p = self.as_ptr(self.eval(value)?)?;
                let fe = match self.pp_table.get(ce) {
                    Some(&fe) => fe,
                    None => {
                        return Err(self.pp_fail(
                            "pp_sign",
                            *ce as u64,
                            PpFail::NotRegistered { ce: *ce as u64 },
                            p,
                            key_code(key_id(*key)),
                        ));
                    }
                };
                match img.backend {
                    Backend::PacInPointer => {
                        let signed = self.pac.sign(key_id(*key), p, fe);
                        if self.rec.is_some() {
                            self.rec_push(RecKind::Sign, signed, fe, key_code(key_id(*key)));
                        }
                        self.set(*result, RtVal::P(signed));
                    }
                    Backend::MacTable => {
                        self.pac.sign_count += 1;
                        self.pending_mac =
                            Some(self.pac.compute_pac(key_id(*key), p, fe));
                        if self.rec.is_some() {
                            self.rec_push(RecKind::Sign, p, fe, key_code(key_id(*key)));
                        }
                        self.set(*result, RtVal::P(p));
                    }
                }
                Ok(())
            }
            Inst::PpAddTbi { result, value, ce } => {
                let p = self.as_ptr(self.eval(value)?)?;
                self.set(*result, RtVal::P(self.img.va.with_tbi_tag(p, *ce)));
                Ok(())
            }
            Inst::PpAuth { result, value, key } => {
                let p = self.as_ptr(self.eval(value)?)?;
                let ce = self.img.va.tbi_tag(p);
                if ce == 0 {
                    return Err(self.pp_fail(
                        "pp_auth",
                        0,
                        PpFail::MissingTag,
                        p,
                        key_code(key_id(*key)),
                    ));
                }
                let fe = match self.pp_table.get(&ce) {
                    Some(&fe) => fe,
                    None => {
                        return Err(self.pp_fail(
                            "pp_auth",
                            ce as u64,
                            PpFail::NotInStore { ce: ce as u64 },
                            p,
                            key_code(key_id(*key)),
                        ));
                    }
                };
                let untagged = self.img.va.clear_tbi(p);
                match img.backend {
                    Backend::PacInPointer => {
                        match self.pac.auth(key_id(*key), untagged, fe) {
                            Ok(clean) => {
                                if self.rec.is_some() {
                                    self.rec_push(
                                        RecKind::Auth,
                                        untagged,
                                        fe,
                                        key_code(key_id(*key)),
                                    );
                                }
                                self.set(*result, RtVal::P(clean));
                                Ok(())
                            }
                            Err(e) => Err(self.pac_auth_fail(
                                "pp_auth",
                                PacSite::OnLoad,
                                fe,
                                e.found_pac,
                                e.expected_pac,
                                untagged,
                                key_code(key_id(*key)),
                            )),
                        }
                    }
                    Backend::MacTable => {
                        self.pac.auth_count += 1;
                        let expected =
                            self.pac.compute_pac(key_id(*key), untagged, fe);
                        let ok = match (self.pending_mac.take(), self.last_ptr_load) {
                            (Some(mac), _) => mac == expected,
                            (None, Some(slot)) => {
                                self.mac_table.get(&slot) == Some(&expected)
                            }
                            _ => false,
                        };
                        if ok {
                            if self.rec.is_some() {
                                self.rec_push(
                                    RecKind::Auth,
                                    untagged,
                                    fe,
                                    key_code(key_id(*key)),
                                );
                            }
                            self.set(*result, RtVal::P(untagged));
                            Ok(())
                        } else {
                            self.pac.fail_count += 1;
                            Err(self.mac_stale_fail(
                                "pp_auth",
                                PacSite::OnLoad,
                                fe,
                                expected,
                                untagged,
                                key_code(key_id(*key)),
                            ))
                        }
                    }
                }
            }
        }
    }

    fn binop(&self, op: BinOp, a: RtVal, b: RtVal, ty: TypeId) -> Result<RtVal, Trap> {
        let m = &self.img.module;
        if matches!(m.types.get(ty), Type::F64) {
            let fa = match a {
                RtVal::F(f) => f,
                RtVal::I(i) => i as f64,
                RtVal::P(_) => return Err(Trap::BadProgram("pointer in float op".into())),
            };
            let fb = match b {
                RtVal::F(f) => f,
                RtVal::I(i) => i as f64,
                RtVal::P(_) => return Err(Trap::BadProgram("pointer in float op".into())),
            };
            let r = match op {
                BinOp::Add => fa + fb,
                BinOp::Sub => fa - fb,
                BinOp::Mul => fa * fb,
                BinOp::Div => fa / fb,
                BinOp::Rem => fa % fb,
                _ => return Err(Trap::BadProgram("bitwise op on float".into())),
            };
            return Ok(RtVal::F(r));
        }
        let ia = match a {
            RtVal::I(i) => i,
            RtVal::P(p) => p as i64,
            RtVal::F(f) => f as i64,
        };
        let ib = match b {
            RtVal::I(i) => i,
            RtVal::P(p) => p as i64,
            RtVal::F(f) => f as i64,
        };
        let r = match op {
            BinOp::Add => ia.wrapping_add(ib),
            BinOp::Sub => ia.wrapping_sub(ib),
            BinOp::Mul => ia.wrapping_mul(ib),
            BinOp::Div => {
                if ib == 0 {
                    return Err(Trap::DivByZero { func: self.cur_func_name() });
                }
                ia.wrapping_div(ib)
            }
            BinOp::Rem => {
                if ib == 0 {
                    return Err(Trap::DivByZero { func: self.cur_func_name() });
                }
                ia.wrapping_rem(ib)
            }
            BinOp::And => ia & ib,
            BinOp::Or => ia | ib,
            BinOp::Xor => ia ^ ib,
            BinOp::Shl => ia.wrapping_shl(ib as u32 & 63),
            BinOp::Shr => ia.wrapping_shr(ib as u32 & 63),
        };
        Ok(RtVal::I(wrap_int(m, ty, r)))
    }

    fn external_call(&mut self, name: &str, args: &[RtVal], ret: TypeId) -> Option<RtVal> {
        let critical = CRITICAL_EXTERNALS.contains(&name);
        self.events.push(ExtEvent {
            name: name.to_string(),
            args: args.iter().map(|a| a.to_string()).collect(),
            critical,
        });
        let img = self.img;
        let m = &img.module;
        if ret == m.types.void() {
            None
        } else if m.types.is_ptr(ret) {
            Some(RtVal::P(0))
        } else if ret == m.types.f64() {
            Some(RtVal::F(0.0))
        } else {
            Some(RtVal::I(0))
        }
    }
}

fn wrap_int(m: &Module, ty: TypeId, v: i64) -> i64 {
    match m.types.get(ty) {
        Type::Bool => (v != 0) as i64,
        Type::I8 => v as i8 as i64,
        Type::I16 => v as i16 as i64,
        Type::I32 => v as i32 as i64,
        _ => v,
    }
}

/// Orders two runtime values under the comparison coercion rules; shared
/// by the interpreter's `cmp_vals` and the compiled engine's per-op
/// closures. The common `(I, I)` arm leads.
#[inline(always)]
fn ord_vals(a: RtVal, b: RtVal) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (RtVal::I(x), RtVal::I(y)) => x.cmp(&y),
        (RtVal::F(x), RtVal::F(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Greater),
        (RtVal::F(x), RtVal::I(y)) => {
            x.partial_cmp(&(y as f64)).unwrap_or(Ordering::Greater)
        }
        (RtVal::I(x), RtVal::F(y)) => {
            (x as f64).partial_cmp(&y).unwrap_or(Ordering::Greater)
        }
        (RtVal::P(x), RtVal::P(y)) => x.cmp(&y),
        (RtVal::P(x), RtVal::I(y)) => x.cmp(&(y as u64)),
        (RtVal::I(x), RtVal::P(y)) => (x as u64).cmp(&y),
        // Float/pointer comparisons cannot come from verified IR; order
        // arbitrarily rather than panic.
        (RtVal::F(_), RtVal::P(_)) | (RtVal::P(_), RtVal::F(_)) => Ordering::Greater,
    }
}

fn cmp_vals(op: CmpOp, a: RtVal, b: RtVal) -> bool {
    use std::cmp::Ordering;
    let ord = ord_vals(a, b);
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// String-segment layout: the address of each interned string, plus the
/// total segment size. Shared by the loader and the block compiler so
/// both resolve `Operand::Str` to the same addresses.
pub(crate) fn string_addresses(m: &Module) -> (Vec<u64>, u64) {
    let mut saddr = Vec::with_capacity(m.strings.len());
    let mut soff = 0u64;
    for s in &m.strings {
        saddr.push(layout::STR_BASE + soff);
        soff += s.len() as u64 + 1;
    }
    (saddr, soff)
}

/// The code address of a function. An out-of-range id gets a code-segment
/// address (it will fail resolution on use rather than abort here).
pub fn func_address(m: &Module, fid: FuncId) -> u64 {
    let base = if m.funcs.get(fid.0 as usize).is_some_and(|f| f.is_external) {
        layout::EXTERNAL_BASE
    } else {
        layout::CODE_BASE
    };
    base + fid.0 as u64 * layout::CODE_STRIDE
}

/// Resolves a canonical address back to a function, if it is one.
/// Returns (id, is_external).
pub fn resolve_code_addr(m: &Module, addr: u64) -> Option<(FuncId, bool)> {
    for (base, external) in [(layout::CODE_BASE, false), (layout::EXTERNAL_BASE, true)] {
        if addr >= base && addr < base + m.funcs.len() as u64 * layout::CODE_STRIDE {
            let off = addr - base;
            if !off.is_multiple_of(layout::CODE_STRIDE) {
                return None;
            }
            let fid = FuncId((off / layout::CODE_STRIDE) as u32);
            let f = &m.funcs[fid.0 as usize];
            if f.is_external == external {
                return Some((fid, external));
            }
            return None;
        }
    }
    None
}

fn key_id(k: PacKey) -> KeyId {
    match k {
        PacKey::Ia => KeyId::Ia,
        PacKey::Ib => KeyId::Ib,
        PacKey::Da => KeyId::Da,
        PacKey::Db => KeyId::Db,
        PacKey::Ga => KeyId::Ga,
    }
}
