//! Interpreter ≡ compiled-engine parity, as executable claims.
//!
//! The closure-threaded engine promises to be *observably identical* to
//! the interpreter — that is what lets the interpreter serve as its
//! differential oracle. These tests pin the promise down for every trap
//! class and for the accounting: both engines must produce equal
//! [`ExecResult`]s (status, output, events, cycles, instructions, PAC
//! counters, site counts, audit records) on the same image and the same
//! attacker actions.

use rsti_core::{Mechanism, OptLevel};
use rsti_ir::{BlockId, Terminator};
use rsti_vm::{Backend, ExecBackend, ExecResult, Image, RunStop, Status, Trap, Vm};

/// Runs one image under one engine, applying `attack` at the `fire` pause
/// point when given.
fn run_one(
    img: &Image,
    exec: ExecBackend,
    fuel: u64,
    attack: Option<&dyn Fn(&mut Vm)>,
) -> ExecResult {
    let img = img.clone().with_exec(exec);
    let mut vm = Vm::new(&img);
    vm.set_fuel(fuel);
    match attack {
        None => vm.run(),
        Some(f) => {
            assert_eq!(vm.run_to_function("fire"), RunStop::Entered, "{}", exec.label());
            f(&mut vm);
            vm.finish()
        }
    }
}

/// Asserts both engines agree on an image, returns the (shared) result.
fn assert_parity(
    img: &Image,
    fuel: u64,
    attack: Option<&dyn Fn(&mut Vm)>,
    label: &str,
) -> ExecResult {
    let interp = run_one(img, ExecBackend::Interp, fuel, attack);
    let compiled = run_one(img, ExecBackend::Compiled, fuel, attack);
    assert_eq!(interp, compiled, "backend divergence: {label}");
    compiled
}

fn instrumented(src: &str, mech: Mechanism, opt: OptLevel) -> Image {
    let m = rsti_frontend::compile(src, "parity").expect("compiles");
    let mut p = rsti_core::instrument(&m, mech);
    rsti_core::optimize_program_at(&mut p, opt);
    Image::from_instrumented(&p)
}

fn baseline(src: &str) -> Image {
    let m = rsti_frontend::compile(src, "parity").expect("compiles");
    Image::baseline(&m)
}

const VICTIM: &str = r#"
    void benign() { }
    void gadget() { print_str("gadget"); }
    struct obj { long pad; void (*fp)(); };
    struct obj* g_obj;
    void fire() { g_obj->fp(); }
    int main() {
        g_obj = (struct obj*) malloc(sizeof(struct obj));
        g_obj->fp = benign;
        fire();
        return 0;
    }
"#;

/// A compute-heavy program touching arithmetic, memory, branches, calls,
/// and printing — the parity workhorse for clean runs.
const MIXED: &str = r#"
    int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    int main() {
        int* buf = (int*) malloc(64 * 4);
        int i = 0;
        while (i < 64) {
            buf[i] = i * 3 - 1;
            i = i + 1;
        }
        long sum = 0;
        i = 0;
        while (i < 64) {
            sum = sum + buf[i];
            i = i + 1;
        }
        print_int(sum);
        print_int(fib(12));
        double x = 1.5;
        double y = x * 4.0 + 0.25;
        print_int((int) y);
        free(buf);
        return 0;
    }
"#;

// ---- trap-class parity table ----------------------------------------------

/// PAC violation parity, per mechanism, both enforcement backends: the
/// attacker swaps the signed function pointer for a raw gadget address at
/// the `fire` pause point; every configuration must diverge-free report
/// the same `PacAuthFailure` (or `PpAuthFailure`), same audit record,
/// same line, same counters.
#[test]
fn pac_violation_parity_per_mechanism() {
    let corrupt: &dyn Fn(&mut Vm) = &|vm| {
        let obj = vm.heap_live()[0].0;
        let gadget = vm.func_addr("gadget").unwrap();
        vm.attacker_write_u64(obj + 8, gadget).unwrap();
    };
    for mech in Mechanism::ALL {
        for opt in OptLevel::ALL {
            for enforce in [Backend::PacInPointer, Backend::MacTable] {
                let img = instrumented(VICTIM, mech, opt).with_backend(enforce);
                let label = format!("{mech:?}/{opt:?}/{enforce:?}");
                let r = assert_parity(&img, 10_000_000, Some(corrupt), &label);
                assert!(
                    matches!(
                        r.status,
                        Status::Trapped(
                            Trap::PacAuthFailure { .. }
                                | Trap::PpAuthFailure { .. }
                                | Trap::NonCanonicalCall { .. }
                        )
                    ),
                    "{label}: corruption not detected: {:?}",
                    r.status
                );
                assert_eq!(r.audit.len(), usize::from(r.status != Status::Exited(0) && matches!(r.status, Status::Trapped(ref t) if t.is_detection())), "{label}");
            }
        }
    }
}

/// StackOverflow parity: unbounded recursion overflows the frame limit
/// identically under both engines.
#[test]
fn stack_overflow_parity() {
    let src = r#"
        int down(int n) { return down(n + 1); }
        int main() { return down(0); }
    "#;
    let r = assert_parity(&baseline(src), 50_000_000, None, "stack-overflow");
    assert_eq!(
        std::mem::discriminant(match &r.status {
            Status::Trapped(t) => t,
            s => panic!("expected trap, got {s:?}"),
        }),
        std::mem::discriminant(&Trap::StackOverflow)
    );
}

/// Alloca-exhaustion StackOverflow parity (the stack-segment variant).
#[test]
fn alloca_overflow_parity() {
    let src = r#"
        int grow(int n) {
            long slab[4096];
            slab[0] = n;
            return grow(n + (int) slab[0] - n + 1);
        }
        int main() { return grow(0); }
    "#;
    let r = assert_parity(&baseline(src), 50_000_000, None, "alloca-overflow");
    assert!(
        matches!(r.status, Status::Trapped(Trap::StackOverflow)),
        "{:?}",
        r.status
    );
}

/// HeapExhausted parity: a malloc loop drains the arena identically.
#[test]
fn heap_exhausted_parity() {
    let src = r#"
        int main() {
            int i = 0;
            while (i < 100000) {
                char* p = (char*) malloc(65536);
                p[0] = 1;
                i = i + 1;
            }
            return 0;
        }
    "#;
    let r = assert_parity(&baseline(src), 50_000_000, None, "heap-exhausted");
    assert!(
        matches!(r.status, Status::Trapped(Trap::HeapExhausted)),
        "{:?}",
        r.status
    );
}

/// Segment-error parity: a store through a null pointer faults with the
/// same `Mem` trap (function name included) under both engines.
#[test]
fn null_deref_parity() {
    let src = r#"
        int main() {
            int* p = null;
            *p = 7;
            return 0;
        }
    "#;
    let r = assert_parity(&baseline(src), 1_000_000, None, "null-deref");
    assert!(matches!(r.status, Status::Trapped(Trap::Mem { .. })), "{:?}", r.status);
}

/// Division-by-zero parity (trap carries the function name).
#[test]
fn div_by_zero_parity() {
    let src = r#"
        int main() {
            int d = 4;
            int z = d - 4;
            return 12 / z;
        }
    "#;
    let r = assert_parity(&baseline(src), 1_000_000, None, "div-zero");
    assert!(matches!(r.status, Status::Trapped(Trap::DivByZero { .. })), "{:?}", r.status);
}

/// BadProgram parity: reaching `unreachable` (here: a terminator swapped
/// in post-compile) renders the identical message under both engines.
#[test]
fn unreachable_parity() {
    let mut m = rsti_frontend::compile("int main() { return 0; }", "parity").unwrap();
    let main = m.func_by_name("main").unwrap();
    m.funcs[main.0 as usize].blocks[0].term = Terminator::Unreachable;
    let r = assert_parity(&Image::baseline(&m), 1_000_000, None, "unreachable");
    assert!(
        matches!(&r.status, Status::Trapped(Trap::BadProgram(s)) if s.contains("unreachable")),
        "{:?}",
        r.status
    );
}

/// BadProgram parity: a branch to a missing block reports the same
/// message from the compiled driver's block lookup as from `step`.
#[test]
fn missing_block_parity() {
    let mut m = rsti_frontend::compile("int main() { return 0; }", "parity").unwrap();
    let main = m.func_by_name("main").unwrap();
    m.funcs[main.0 as usize].blocks[0].term = Terminator::Br(BlockId(99));
    let r = assert_parity(&Image::baseline(&m), 1_000_000, None, "missing-block");
    assert!(
        matches!(&r.status, Status::Trapped(Trap::BadProgram(s)) if s.contains("missing block")),
        "{:?}",
        r.status
    );
}

// ---- accounting parity -----------------------------------------------------

/// The block entry/exit charge is backend-neutral: clean runs report
/// identical `cycles` (the `cycle_model_total`) and `insts` across
/// engines, for every mechanism × opt level — the regression test for
/// the shared `charge_block_transfer` site.
#[test]
fn cycle_model_total_is_backend_neutral() {
    for src in [MIXED, VICTIM] {
        let b = baseline(src);
        assert_parity(&b, 50_000_000, None, "baseline accounting");
        for mech in Mechanism::ALL {
            for opt in OptLevel::ALL {
                let img = instrumented(src, mech, opt);
                let label = format!("accounting {mech:?}/{opt:?}");
                let r = assert_parity(&img, 50_000_000, None, &label);
                assert!(r.status.is_exit(), "{label}: {:?}", r.status);
                assert!(r.cycles > 0 && r.insts > 0, "{label}");
            }
        }
    }
}

/// Fuel exhaustion is charge-exact: cutting the budget to an arbitrary
/// point mid-run leaves both engines with the same instruction and cycle
/// totals — the compiled engine's pre-charge/rollback bookkeeping cannot
/// drift from per-op charging even when the budget expires mid-block.
#[test]
fn fuel_exhaustion_accounting_parity() {
    let img = baseline(MIXED);
    for fuel in [1, 7, 50, 333, 1234, 2500] {
        let r = assert_parity(&img, fuel, None, &format!("fuel={fuel}"));
        assert!(
            matches!(r.status, Status::Trapped(Trap::FuelExhausted)),
            "fuel={fuel}: {:?}",
            r.status
        );
        assert_eq!(r.insts, fuel, "fuel={fuel}: exhaustion must stop exactly at the budget");
    }
}

/// Watchpoint pause/resume works identically: pausing at `fire`, reading
/// attacker-visible state, and finishing produces the same result — the
/// compiled driver's single-block mode must see every block entry.
#[test]
fn watchpoint_resume_parity() {
    let img = instrumented(VICTIM, Mechanism::Stwc, OptLevel::Cfg);
    let benign: &dyn Fn(&mut Vm) = &|vm| {
        // Pause, look, touch nothing: the run must stay clean.
        assert!(!vm.heap_live().is_empty());
    };
    let r = assert_parity(&img, 10_000_000, Some(benign), "watch-resume");
    assert_eq!(r.status, Status::Exited(0));
}

/// MacTable clean-run parity: sign/auth round trips through the shadow
/// MAC table leave identical counters.
#[test]
fn mac_table_clean_run_parity() {
    for mech in Mechanism::ALL {
        let img = instrumented(VICTIM, mech, OptLevel::BlockLocal).with_backend(Backend::MacTable);
        let r = assert_parity(&img, 10_000_000, None, &format!("mac-clean {mech:?}"));
        assert_eq!(r.status, Status::Exited(0), "{mech:?}");
    }
}

/// The compiled engine reports the same per-site dynamic PA profile.
#[test]
fn site_count_parity_under_stl() {
    let img = instrumented(VICTIM, Mechanism::Stl, OptLevel::None);
    let r = assert_parity(&img, 10_000_000, None, "stl-sites");
    assert!(r.site_counts.iter().sum::<u64>() > 0, "STL run exercised no PA sites");
}
