//! Interpreter ≡ compiled-engine parity, as executable claims.
//!
//! The closure-threaded engine promises to be *observably identical* to
//! the interpreter — that is what lets the interpreter serve as its
//! differential oracle. These tests pin the promise down for every trap
//! class and for the accounting: both engines must produce equal
//! [`ExecResult`]s (status, output, events, cycles, instructions, PAC
//! counters, site counts, audit records) on the same image and the same
//! attacker actions.

use rsti_core::{Mechanism, OptLevel};
use rsti_ir::{BlockId, Terminator};
use rsti_vm::{Backend, ExecBackend, ExecResult, Image, RunStop, Status, Trap, Vm};

/// Runs one image under one engine, applying `attack` at the `fire` pause
/// point when given.
fn run_one(
    img: &Image,
    exec: ExecBackend,
    fuel: u64,
    attack: Option<&dyn Fn(&mut Vm)>,
) -> ExecResult {
    let img = img.clone().with_exec(exec);
    let mut vm = Vm::new(&img);
    vm.set_fuel(fuel);
    match attack {
        None => vm.run(),
        Some(f) => {
            assert_eq!(vm.run_to_function("fire"), RunStop::Entered, "{}", exec.label());
            f(&mut vm);
            vm.finish()
        }
    }
}

/// Asserts both engines agree on an image, returns the (shared) result.
fn assert_parity(
    img: &Image,
    fuel: u64,
    attack: Option<&dyn Fn(&mut Vm)>,
    label: &str,
) -> ExecResult {
    let interp = run_one(img, ExecBackend::Interp, fuel, attack);
    let compiled = run_one(img, ExecBackend::Compiled, fuel, attack);
    assert_eq!(interp, compiled, "backend divergence: {label}");
    compiled
}

fn instrumented(src: &str, mech: Mechanism, opt: OptLevel) -> Image {
    let m = rsti_frontend::compile(src, "parity").expect("compiles");
    let mut p = rsti_core::instrument(&m, mech);
    rsti_core::optimize_program_at(&mut p, opt);
    Image::from_instrumented(&p)
}

fn baseline(src: &str) -> Image {
    let m = rsti_frontend::compile(src, "parity").expect("compiles");
    Image::baseline(&m)
}

const VICTIM: &str = r#"
    void benign() { }
    void gadget() { print_str("gadget"); }
    struct obj { long pad; void (*fp)(); };
    struct obj* g_obj;
    void fire() { g_obj->fp(); }
    int main() {
        g_obj = (struct obj*) malloc(sizeof(struct obj));
        g_obj->fp = benign;
        fire();
        return 0;
    }
"#;

/// A compute-heavy program touching arithmetic, memory, branches, calls,
/// and printing — the parity workhorse for clean runs.
const MIXED: &str = r#"
    int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    int main() {
        int* buf = (int*) malloc(64 * 4);
        int i = 0;
        while (i < 64) {
            buf[i] = i * 3 - 1;
            i = i + 1;
        }
        long sum = 0;
        i = 0;
        while (i < 64) {
            sum = sum + buf[i];
            i = i + 1;
        }
        print_int(sum);
        print_int(fib(12));
        double x = 1.5;
        double y = x * 4.0 + 0.25;
        print_int((int) y);
        free(buf);
        return 0;
    }
"#;

// ---- trap-class parity table ----------------------------------------------

/// PAC violation parity, per mechanism, both enforcement backends: the
/// attacker swaps the signed function pointer for a raw gadget address at
/// the `fire` pause point; every configuration must diverge-free report
/// the same `PacAuthFailure` (or `PpAuthFailure`), same audit record,
/// same line, same counters.
#[test]
fn pac_violation_parity_per_mechanism() {
    let corrupt: &dyn Fn(&mut Vm) = &|vm| {
        let obj = vm.heap_live()[0].0;
        let gadget = vm.func_addr("gadget").unwrap();
        vm.attacker_write_u64(obj + 8, gadget).unwrap();
    };
    for mech in Mechanism::ALL {
        for opt in OptLevel::ALL {
            for enforce in [Backend::PacInPointer, Backend::MacTable] {
                let img = instrumented(VICTIM, mech, opt).with_backend(enforce);
                let label = format!("{mech:?}/{opt:?}/{enforce:?}");
                let r = assert_parity(&img, 10_000_000, Some(corrupt), &label);
                assert!(
                    matches!(
                        r.status,
                        Status::Trapped(
                            Trap::PacAuthFailure { .. }
                                | Trap::PpAuthFailure { .. }
                                | Trap::NonCanonicalCall { .. }
                        )
                    ),
                    "{label}: corruption not detected: {:?}",
                    r.status
                );
                assert_eq!(r.audit.len(), usize::from(r.status != Status::Exited(0) && matches!(r.status, Status::Trapped(ref t) if t.is_detection())), "{label}");
            }
        }
    }
}

/// StackOverflow parity: unbounded recursion overflows the frame limit
/// identically under both engines.
#[test]
fn stack_overflow_parity() {
    let src = r#"
        int down(int n) { return down(n + 1); }
        int main() { return down(0); }
    "#;
    let r = assert_parity(&baseline(src), 50_000_000, None, "stack-overflow");
    assert_eq!(
        std::mem::discriminant(match &r.status {
            Status::Trapped(t) => t,
            s => panic!("expected trap, got {s:?}"),
        }),
        std::mem::discriminant(&Trap::StackOverflow)
    );
}

/// Alloca-exhaustion StackOverflow parity (the stack-segment variant).
#[test]
fn alloca_overflow_parity() {
    let src = r#"
        int grow(int n) {
            long slab[4096];
            slab[0] = n;
            return grow(n + (int) slab[0] - n + 1);
        }
        int main() { return grow(0); }
    "#;
    let r = assert_parity(&baseline(src), 50_000_000, None, "alloca-overflow");
    assert!(
        matches!(r.status, Status::Trapped(Trap::StackOverflow)),
        "{:?}",
        r.status
    );
}

/// HeapExhausted parity: a malloc loop drains the arena identically.
#[test]
fn heap_exhausted_parity() {
    let src = r#"
        int main() {
            int i = 0;
            while (i < 100000) {
                char* p = (char*) malloc(65536);
                p[0] = 1;
                i = i + 1;
            }
            return 0;
        }
    "#;
    let r = assert_parity(&baseline(src), 50_000_000, None, "heap-exhausted");
    assert!(
        matches!(r.status, Status::Trapped(Trap::HeapExhausted)),
        "{:?}",
        r.status
    );
}

/// Segment-error parity: a store through a null pointer faults with the
/// same `Mem` trap (function name included) under both engines.
#[test]
fn null_deref_parity() {
    let src = r#"
        int main() {
            int* p = null;
            *p = 7;
            return 0;
        }
    "#;
    let r = assert_parity(&baseline(src), 1_000_000, None, "null-deref");
    assert!(matches!(r.status, Status::Trapped(Trap::Mem { .. })), "{:?}", r.status);
}

/// Division-by-zero parity (trap carries the function name).
#[test]
fn div_by_zero_parity() {
    let src = r#"
        int main() {
            int d = 4;
            int z = d - 4;
            return 12 / z;
        }
    "#;
    let r = assert_parity(&baseline(src), 1_000_000, None, "div-zero");
    assert!(matches!(r.status, Status::Trapped(Trap::DivByZero { .. })), "{:?}", r.status);
}

/// BadProgram parity: reaching `unreachable` (here: a terminator swapped
/// in post-compile) renders the identical message under both engines.
#[test]
fn unreachable_parity() {
    let mut m = rsti_frontend::compile("int main() { return 0; }", "parity").unwrap();
    let main = m.func_by_name("main").unwrap();
    m.funcs[main.0 as usize].blocks[0].term = Terminator::Unreachable;
    let r = assert_parity(&Image::baseline(&m), 1_000_000, None, "unreachable");
    assert!(
        matches!(&r.status, Status::Trapped(Trap::BadProgram(s)) if s.contains("unreachable")),
        "{:?}",
        r.status
    );
}

/// BadProgram parity: a branch to a missing block reports the same
/// message from the compiled driver's block lookup as from `step`.
#[test]
fn missing_block_parity() {
    let mut m = rsti_frontend::compile("int main() { return 0; }", "parity").unwrap();
    let main = m.func_by_name("main").unwrap();
    m.funcs[main.0 as usize].blocks[0].term = Terminator::Br(BlockId(99));
    let r = assert_parity(&Image::baseline(&m), 1_000_000, None, "missing-block");
    assert!(
        matches!(&r.status, Status::Trapped(Trap::BadProgram(s)) if s.contains("missing block")),
        "{:?}",
        r.status
    );
}

// ---- accounting parity -----------------------------------------------------

/// The block entry/exit charge is backend-neutral: clean runs report
/// identical `cycles` (the `cycle_model_total`) and `insts` across
/// engines, for every mechanism × opt level — the regression test for
/// the shared `charge_block_transfer` site.
#[test]
fn cycle_model_total_is_backend_neutral() {
    for src in [MIXED, VICTIM] {
        let b = baseline(src);
        assert_parity(&b, 50_000_000, None, "baseline accounting");
        for mech in Mechanism::ALL {
            for opt in OptLevel::ALL {
                let img = instrumented(src, mech, opt);
                let label = format!("accounting {mech:?}/{opt:?}");
                let r = assert_parity(&img, 50_000_000, None, &label);
                assert!(r.status.is_exit(), "{label}: {:?}", r.status);
                assert!(r.cycles > 0 && r.insts > 0, "{label}");
            }
        }
    }
}

/// Fuel exhaustion is charge-exact: cutting the budget to an arbitrary
/// point mid-run leaves both engines with the same instruction and cycle
/// totals — the compiled engine's pre-charge/rollback bookkeeping cannot
/// drift from per-op charging even when the budget expires mid-block.
#[test]
fn fuel_exhaustion_accounting_parity() {
    let img = baseline(MIXED);
    for fuel in [1, 7, 50, 333, 1234, 2500] {
        let r = assert_parity(&img, fuel, None, &format!("fuel={fuel}"));
        assert!(
            matches!(r.status, Status::Trapped(Trap::FuelExhausted)),
            "fuel={fuel}: {:?}",
            r.status
        );
        assert_eq!(r.insts, fuel, "fuel={fuel}: exhaustion must stop exactly at the budget");
    }
}

/// Watchpoint pause/resume works identically: pausing at `fire`, reading
/// attacker-visible state, and finishing produces the same result — the
/// compiled driver's single-block mode must see every block entry.
#[test]
fn watchpoint_resume_parity() {
    let img = instrumented(VICTIM, Mechanism::Stwc, OptLevel::Cfg);
    let benign: &dyn Fn(&mut Vm) = &|vm| {
        // Pause, look, touch nothing: the run must stay clean.
        assert!(!vm.heap_live().is_empty());
    };
    let r = assert_parity(&img, 10_000_000, Some(benign), "watch-resume");
    assert_eq!(r.status, Status::Exited(0));
}

/// MacTable clean-run parity: sign/auth round trips through the shadow
/// MAC table leave identical counters.
#[test]
fn mac_table_clean_run_parity() {
    for mech in Mechanism::ALL {
        let img = instrumented(VICTIM, mech, OptLevel::BlockLocal).with_backend(Backend::MacTable);
        let r = assert_parity(&img, 10_000_000, None, &format!("mac-clean {mech:?}"));
        assert_eq!(r.status, Status::Exited(0), "{mech:?}");
    }
}

/// The compiled engine reports the same per-site dynamic PA profile.
#[test]
fn site_count_parity_under_stl() {
    let img = instrumented(VICTIM, Mechanism::Stl, OptLevel::None);
    let r = assert_parity(&img, 10_000_000, None, "stl-sites");
    assert!(r.site_counts.iter().sum::<u64>() > 0, "STL run exercised no PA sites");
}

// ---- violation forensics parity -------------------------------------------

/// Audit records agree field by field — not just on the trap message —
/// between the engines, for every mechanism × enforcement backend. The
/// `ExecResult` equality in `assert_parity` subsumes this, but spelling
/// each field out keeps a divergence diagnosable (and pins the claim even
/// if `ExecResult`'s derive ever changes).
#[test]
fn audit_record_full_field_parity() {
    let corrupt: &dyn Fn(&mut Vm) = &|vm| {
        let obj = vm.heap_live()[0].0;
        let gadget = vm.func_addr("gadget").unwrap();
        vm.attacker_write_u64(obj + 8, gadget).unwrap();
    };
    for mech in Mechanism::ALL {
        for enforce in [Backend::PacInPointer, Backend::MacTable] {
            let img = instrumented(VICTIM, mech, OptLevel::Cfg).with_backend(enforce);
            let label = format!("{mech:?}/{enforce:?}");
            let i = run_one(&img, ExecBackend::Interp, 10_000_000, Some(corrupt));
            let c = run_one(&img, ExecBackend::Compiled, 10_000_000, Some(corrupt));
            assert_eq!(i.audit.len(), c.audit.len(), "{label}: audit count");
            for (a, b) in i.audit.iter().zip(&c.audit) {
                assert_eq!(a.mechanism, b.mechanism, "{label}: mechanism");
                assert_eq!(a.modifier, b.modifier, "{label}: modifier");
                assert_eq!(a.site, b.site, "{label}: site");
                assert_eq!(a.func, b.func, "{label}: func");
                assert_eq!(a.line, b.line, "{label}: line");
                assert_eq!(a.inst, b.inst, "{label}: inst");
                assert_eq!(a.detail, b.detail, "{label}: detail");
            }
        }
    }
}

/// With the flight recorder armed, an RSTI detection synthesizes an
/// incident, and the whole incident — lineage, event window, model-cycle
/// timestamps — is bit-identical across engines (it rides on the
/// `ExecResult` equality in `assert_parity`). Non-RSTI traps (e.g. a
/// non-canonical call under a PAC-bit-breaking corruption) produce none.
#[test]
fn incident_parity_per_mechanism() {
    let corrupt: &dyn Fn(&mut Vm) = &|vm| {
        let obj = vm.heap_live()[0].0;
        let gadget = vm.func_addr("gadget").unwrap();
        vm.attacker_write_u64(obj + 8, gadget).unwrap();
    };
    let mut incidents = 0;
    for mech in Mechanism::ALL {
        for opt in OptLevel::ALL {
            for enforce in [Backend::PacInPointer, Backend::MacTable] {
                let img = instrumented(VICTIM, mech, opt)
                    .with_backend(enforce)
                    .with_record();
                let label = format!("{mech:?}/{opt:?}/{enforce:?}");
                let r = assert_parity(&img, 10_000_000, Some(corrupt), &label);
                let detected =
                    matches!(&r.status, Status::Trapped(t) if t.is_detection());
                assert_eq!(
                    r.incident.is_some(),
                    detected,
                    "{label}: incident iff RSTI detection"
                );
                let Some(inc) = &r.incident else { continue };
                incidents += 1;
                assert_eq!(inc.mechanism, mech.name(), "{label}");
                assert!(
                    inc.check_site.starts_with("fire:"),
                    "{label}: failing check site names the victim function, got {:?}",
                    inc.check_site
                );
                assert!(!inc.window.is_empty(), "{label}: event window present");
                assert_eq!(
                    inc.window.last().map(|e| e.kind.as_str()),
                    Some("auth_fail"),
                    "{label}: window closes with the failing auth"
                );
                // The raw overwrite planted a never-signed value: lineage
                // must come up empty and the verdict must say so.
                assert!(inc.lineage.is_none(), "{label}: raw write has no sign lineage");
                assert!(inc.verdict().contains("never signed"), "{label}: {}", inc.verdict());
            }
        }
    }
    assert!(incidents > 0, "no configuration produced an incident");
}

/// Recorder inertness: with `--record` off the result — cycles, insts,
/// counters, audit — is bit-identical to a build that never arms the
/// recorder, under both engines (the PR 7 attr-off discipline).
#[test]
fn recorder_off_is_inert() {
    for exec in [ExecBackend::Interp, ExecBackend::Compiled] {
        let plain = instrumented(MIXED, Mechanism::Stwc, OptLevel::Cfg).with_exec(exec);
        let armed = plain.clone().with_record();
        let off = Vm::new(&plain).run();
        let on = Vm::new(&armed).run();
        assert_eq!(off.status, on.status, "{}", exec.label());
        assert_eq!(off.output, on.output, "{}", exec.label());
        assert_eq!(off.cycles, on.cycles, "{}: recorder must not change the cycle model", exec.label());
        assert_eq!(off.insts, on.insts, "{}", exec.label());
        assert_eq!(off.pac_signs, on.pac_signs, "{}", exec.label());
        assert_eq!(off.pac_auths, on.pac_auths, "{}", exec.label());
        assert_eq!(off.site_counts, on.site_counts, "{}", exec.label());
        assert_eq!(off.audit, on.audit, "{}", exec.label());
        // A clean run never synthesizes an incident, armed or not.
        assert_eq!(off.incident, None, "{}", exec.label());
        assert_eq!(on.incident, None, "{}", exec.label());
    }
}

/// A replayed (previously signed, wrong-context) pointer resolves to its
/// sign site: the attacker copies the signed bits from one slot over
/// another, and the incident's lineage names the original sign event
/// while the verdict calls out the modifier mismatch — identically under
/// both engines.
#[test]
fn replay_incident_carries_sign_lineage() {
    let src = r#"
        struct alpha { long v; };
        struct beta { long v; };
        struct alpha* ga;
        struct beta* gb;
        long fire() { return ga->v + gb->v; }
        int main() {
            ga = (struct alpha*) malloc(sizeof(struct alpha));
            gb = (struct beta*) malloc(sizeof(struct beta));
            ga->v = 1;
            gb->v = 2;
            return (int) fire();
        }
    "#;
    let replay: &dyn Fn(&mut Vm) = &|vm| {
        // Substitute the signed beta pointer into alpha's slot: a replay
        // of a legitimately signed value into the wrong context.
        let src_a = vm.global_addr("gb").unwrap();
        let dst_a = vm.global_addr("ga").unwrap();
        let bytes = vm.attacker_read(src_a, 8).unwrap();
        vm.attacker_write(dst_a, &bytes).unwrap();
    };
    let img = instrumented(src, Mechanism::Stwc, OptLevel::None).with_record();
    let r = assert_parity(&img, 10_000_000, Some(replay), "replay-lineage");
    assert!(
        matches!(&r.status, Status::Trapped(t) if t.is_detection()),
        "{:?}",
        r.status
    );
    let inc = r.incident.expect("detection synthesizes an incident");
    let lin = inc.lineage.as_ref().expect("replayed value was legitimately signed");
    assert_eq!(lin.func, "main", "signed while main initialized the globals");
    assert!(lin.cycle < inc.cycle, "sign precedes the failing auth");
    assert_ne!(lin.modifier, inc.presented_modifier, "cross-type replay");
    assert!(inc.verdict().contains("modifier mismatch"), "{}", inc.verdict());
}
