//! AST → MiniC pretty-printer.
//!
//! The fuzzing subsystem (`rsti-fuzz`) manipulates programs at the AST
//! level — the grammar-directed generator emits [`Item`] trees and the
//! delta-debugging minimizer deletes/simplifies AST nodes — but the
//! pipeline under test consumes *source text*. The printer is the bridge,
//! and it carries a machine-checked contract:
//!
//! ```text
//! parse(print(items)) ≡ items        (structurally, modulo line numbers)
//! ```
//!
//! checked by [`ast_eq_items`] in property tests. Two consequences shape
//! the implementation:
//!
//! * **Aggressive parenthesisation.** Every binary/unary subexpression is
//!   printed inside parentheses, so no precedence or associativity
//!   reasoning is needed and the reparse is unambiguous. Parentheses do
//!   not create AST nodes, so round-tripping is unaffected.
//! * **Negative integer literals print as hex.** `-5` *as source* parses
//!   to `Unary(Neg, IntLit(5))`, not `IntLit(-5)`, so a negative
//!   [`Expr::IntLit`] (which the minimizer can produce by folding) is
//!   printed as the two's-complement hex literal — `0xFFFF...FB` — which
//!   the lexer reinterprets to the identical `i64` value.
//!
//! Compound assignments (`+=`, `++`) never appear: the parser desugars
//! them to plain assignments, so the printer only ever sees — and only
//! ever needs to emit — the desugared form.

use crate::ast::*;
use std::fmt::Write as _;

/// Prints a whole translation unit as parseable MiniC source.
pub fn print_items(items: &[Item]) -> String {
    let mut p = Printer { out: String::new(), indent: 0 };
    for it in items {
        p.item(it);
    }
    p.out
}

/// Prints a single expression (diagnostics, tests).
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer { out: String::new(), indent: 0 };
    p.expr(e);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line_start(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn nl(&mut self) {
        self.out.push('\n');
    }

    // ---- types ----------------------------------------------------------

    /// Prints a declaration `TYPE NAME` handling the three declarator
    /// shapes the grammar distinguishes: plain, array, function pointer.
    fn decl(&mut self, ty: &AstType, name: &str, is_const: bool) {
        if is_const {
            self.out.push_str("const ");
        }
        match ty {
            AstType::FuncPtr { ret, params } => {
                self.type_name(ret);
                let _ = write!(self.out, " (*{name})");
                self.fnptr_params(params);
            }
            AstType::Array(elem, n) => {
                self.type_name(elem);
                let _ = write!(self.out, " {name}[{n}]");
            }
            _ => {
                self.type_name(ty);
                let _ = write!(self.out, " {name}");
            }
        }
    }

    /// Prints an abstract type (casts, sizeof, fn-ptr parameter lists).
    fn type_name(&mut self, ty: &AstType) {
        match ty {
            AstType::Void => self.out.push_str("void"),
            AstType::Bool => self.out.push_str("bool"),
            AstType::Char => self.out.push_str("char"),
            AstType::Short => self.out.push_str("short"),
            AstType::Int => self.out.push_str("int"),
            AstType::Long => self.out.push_str("long"),
            AstType::Double => self.out.push_str("double"),
            AstType::Struct(n) => {
                let _ = write!(self.out, "struct {n}");
            }
            AstType::Ptr(inner) => {
                self.type_name(inner);
                self.out.push('*');
            }
            AstType::FuncPtr { ret, params } => {
                self.type_name(ret);
                self.out.push_str(" (*)");
                self.fnptr_params(params);
            }
            AstType::Array(elem, n) => {
                // Arrays are only legal in declarations; an abstract-type
                // position falls back to the element type (sizeof of an
                // array type never round-trips through this printer, and
                // the generator never emits one).
                self.type_name(elem);
                let _ = write!(self.out, "[{n}]");
            }
        }
    }

    fn fnptr_params(&mut self, params: &[AstType]) {
        self.out.push('(');
        for (i, p) in params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.type_name(p);
        }
        self.out.push(')');
    }

    // ---- items ----------------------------------------------------------

    fn item(&mut self, it: &Item) {
        match it {
            Item::Struct { name, fields, .. } => {
                let _ = writeln!(self.out, "struct {name} {{");
                self.indent += 1;
                for f in fields {
                    self.line_start();
                    self.decl(&f.ty, &f.name, f.is_const);
                    self.out.push(';');
                    self.nl();
                }
                self.indent -= 1;
                self.out.push_str("};\n");
            }
            Item::Global { ty, name, is_const, init, .. } => {
                self.decl(ty, name, *is_const);
                if let Some(e) = init {
                    self.out.push_str(" = ");
                    self.expr(e);
                }
                self.out.push_str(";\n");
            }
            Item::Func { ret, name, params, body, is_extern, .. } => {
                if *is_extern {
                    self.out.push_str("extern ");
                }
                self.type_name(ret);
                let _ = write!(self.out, " {name}(");
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.decl(&p.ty, &p.name, p.is_const);
                }
                self.out.push(')');
                match body {
                    Some(b) => {
                        self.out.push(' ');
                        self.block(b);
                        self.nl();
                    }
                    None => self.out.push_str(";\n"),
                }
            }
        }
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self, b: &Block) {
        self.out.push_str("{\n");
        self.indent += 1;
        for s in &b.stmts {
            self.line_start();
            self.stmt(s);
            self.nl();
        }
        self.indent -= 1;
        self.line_start();
        self.out.push('}');
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::If { cond, then_blk, else_blk, .. } => {
                self.out.push_str("if (");
                self.expr(cond);
                self.out.push_str(") ");
                self.block(then_blk);
                if let Some(e) = else_blk {
                    self.out.push_str(" else ");
                    self.block(e);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.out.push_str("while (");
                self.expr(cond);
                self.out.push_str(") ");
                self.block(body);
            }
            Stmt::DoWhile { cond, body, .. } => {
                self.out.push_str("do ");
                self.block(body);
                self.out.push_str(" while (");
                self.expr(cond);
                self.out.push_str(");");
            }
            Stmt::For { init, cond, step, body, .. } => {
                self.out.push_str("for (");
                if let Some(s) = init {
                    self.simple_stmt(s);
                }
                self.out.push_str("; ");
                if let Some(c) = cond {
                    self.expr(c);
                }
                self.out.push_str("; ");
                if let Some(s) = step {
                    self.simple_stmt(s);
                }
                self.out.push_str(") ");
                self.block(body);
            }
            Stmt::Return(v, _) => {
                self.out.push_str("return");
                if let Some(e) = v {
                    self.out.push(' ');
                    self.expr(e);
                }
                self.out.push(';');
            }
            Stmt::Break(_) => self.out.push_str("break;"),
            Stmt::Continue(_) => self.out.push_str("continue;"),
            Stmt::Block(b) => self.block(b),
            simple => {
                self.simple_stmt(simple);
                self.out.push(';');
            }
        }
    }

    /// Declaration / assignment / expression statement, *without* the
    /// trailing semicolon — `for (...)` headers reuse this.
    fn simple_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { ty, name, is_const, init, .. } => {
                self.decl(ty, name, *is_const);
                if let Some(e) = init {
                    self.out.push_str(" = ");
                    self.expr(e);
                }
            }
            Stmt::Assign { target, value, .. } => {
                self.expr(target);
                self.out.push_str(" = ");
                self.expr(value);
            }
            Stmt::Expr(e) => self.expr(e),
            other => {
                // Unreachable from parser output; print a diagnostic
                // placeholder rather than panicking mid-minimization.
                let _ = write!(self.out, "/* non-simple stmt {other:?} */");
            }
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::IntLit(v, _) => {
                if *v < 0 {
                    // `-N` would reparse as Unary(Neg, ...); the
                    // two's-complement hex spelling reparses to the same
                    // IntLit (C unsigned-wrap semantics, see token.rs).
                    let _ = write!(self.out, "{:#x}", *v as u64);
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            Expr::FloatLit(v, _) => {
                let s = format!("{v:?}");
                // The lexer has no exponent/inf/nan forms; fall back to a
                // plain expansion for values outside its grammar.
                if s.contains(['e', 'E', 'n', 'i']) {
                    let _ = write!(self.out, "{v:.10}");
                } else if s.contains('.') {
                    self.out.push_str(&s);
                } else {
                    let _ = write!(self.out, "{s}.0");
                }
            }
            Expr::StrLit(s, _) => {
                self.out.push('"');
                for c in s.chars() {
                    match c {
                        '\n' => self.out.push_str("\\n"),
                        '\t' => self.out.push_str("\\t"),
                        '\0' => self.out.push_str("\\0"),
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        other => self.out.push(other),
                    }
                }
                self.out.push('"');
            }
            Expr::CharLit(c, _) => {
                self.out.push('\'');
                match *c {
                    b'\n' => self.out.push_str("\\n"),
                    b'\t' => self.out.push_str("\\t"),
                    0 => self.out.push_str("\\0"),
                    b'\\' => self.out.push_str("\\\\"),
                    b'\'' => self.out.push_str("\\'"),
                    other => self.out.push(other as char),
                }
                self.out.push('\'');
            }
            Expr::BoolLit(b, _) => {
                self.out.push_str(if *b { "true" } else { "false" });
            }
            Expr::Null(_) => self.out.push_str("null"),
            Expr::Var(n, _) => self.out.push_str(n),
            Expr::Unary { op, expr, .. } => {
                self.out.push('(');
                self.out.push_str(match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                    UnOp::Deref => "*",
                    UnOp::AddrOf => "&",
                });
                self.expr(expr);
                self.out.push(')');
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                self.out.push('(');
                self.expr(lhs);
                let _ = write!(self.out, " {} ", bin_op_str(*op));
                self.expr(rhs);
                self.out.push(')');
            }
            Expr::Call { callee, args, .. } => {
                self.expr(callee);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            Expr::Member { base, field, arrow, .. } => {
                self.expr(base);
                self.out.push_str(if *arrow { "->" } else { "." });
                self.out.push_str(field);
            }
            Expr::Index { base, index, .. } => {
                self.expr(base);
                self.out.push('[');
                self.expr(index);
                self.out.push(']');
            }
            Expr::Cast { ty, expr, .. } => {
                self.out.push('(');
                self.out.push('(');
                self.type_name(ty);
                self.out.push_str(") ");
                self.expr(expr);
                self.out.push(')');
            }
            Expr::Sizeof(ty, _) => {
                self.out.push_str("sizeof(");
                self.type_name(ty);
                self.out.push(')');
            }
        }
    }
}

fn bin_op_str(op: BinOpAst) -> &'static str {
    match op {
        BinOpAst::Add => "+",
        BinOpAst::Sub => "-",
        BinOpAst::Mul => "*",
        BinOpAst::Div => "/",
        BinOpAst::Rem => "%",
        BinOpAst::BitAnd => "&",
        BinOpAst::BitOr => "|",
        BinOpAst::BitXor => "^",
        BinOpAst::Shl => "<<",
        BinOpAst::Shr => ">>",
        BinOpAst::LogAnd => "&&",
        BinOpAst::LogOr => "||",
        BinOpAst::Eq => "==",
        BinOpAst::Ne => "!=",
        BinOpAst::Lt => "<",
        BinOpAst::Le => "<=",
        BinOpAst::Gt => ">",
        BinOpAst::Ge => ">=",
    }
}

// ---------------------------------------------------------------------------
// Structural equality modulo line numbers
// ---------------------------------------------------------------------------

/// Structural equality of translation units ignoring source lines — the
/// `≡` in the round-trip contract (`parse(print(x)) ≡ x`). Line numbers
/// are presentation metadata the printer deliberately renumbers.
pub fn ast_eq_items(a: &[Item], b: &[Item]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| item_eq(x, y))
}

fn item_eq(a: &Item, b: &Item) -> bool {
    match (a, b) {
        (
            Item::Struct { name: n1, fields: f1, .. },
            Item::Struct { name: n2, fields: f2, .. },
        ) => {
            n1 == n2
                && f1.len() == f2.len()
                && f1.iter().zip(f2).all(|(x, y)| {
                    x.ty == y.ty && x.name == y.name && x.is_const == y.is_const
                })
        }
        (
            Item::Global { ty: t1, name: n1, is_const: c1, init: i1, .. },
            Item::Global { ty: t2, name: n2, is_const: c2, init: i2, .. },
        ) => t1 == t2 && n1 == n2 && c1 == c2 && opt_expr_eq(i1.as_ref(), i2.as_ref()),
        (
            Item::Func { ret: r1, name: n1, params: p1, body: b1, is_extern: e1, .. },
            Item::Func { ret: r2, name: n2, params: p2, body: b2, is_extern: e2, .. },
        ) => {
            r1 == r2
                && n1 == n2
                && e1 == e2
                && p1.len() == p2.len()
                && p1.iter().zip(p2.iter()).all(|(x, y)| {
                    x.ty == y.ty && x.name == y.name && x.is_const == y.is_const
                })
                && match (b1, b2) {
                    (None, None) => true,
                    (Some(x), Some(y)) => block_eq(x, y),
                    _ => false,
                }
        }
        _ => false,
    }
}

fn block_eq(a: &Block, b: &Block) -> bool {
    a.stmts.len() == b.stmts.len() && a.stmts.iter().zip(&b.stmts).all(|(x, y)| stmt_eq(x, y))
}

fn opt_stmt_eq(a: Option<&Stmt>, b: Option<&Stmt>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => stmt_eq(x, y),
        _ => false,
    }
}

fn stmt_eq(a: &Stmt, b: &Stmt) -> bool {
    match (a, b) {
        (
            Stmt::Decl { ty: t1, name: n1, is_const: c1, init: i1, .. },
            Stmt::Decl { ty: t2, name: n2, is_const: c2, init: i2, .. },
        ) => t1 == t2 && n1 == n2 && c1 == c2 && opt_expr_eq(i1.as_ref(), i2.as_ref()),
        (Stmt::Expr(x), Stmt::Expr(y)) => expr_eq(x, y),
        (
            Stmt::Assign { target: t1, value: v1, .. },
            Stmt::Assign { target: t2, value: v2, .. },
        ) => expr_eq(t1, t2) && expr_eq(v1, v2),
        (
            Stmt::If { cond: c1, then_blk: t1, else_blk: e1, .. },
            Stmt::If { cond: c2, then_blk: t2, else_blk: e2, .. },
        ) => {
            expr_eq(c1, c2)
                && block_eq(t1, t2)
                && match (e1, e2) {
                    (None, None) => true,
                    (Some(x), Some(y)) => block_eq(x, y),
                    _ => false,
                }
        }
        (
            Stmt::While { cond: c1, body: b1, .. },
            Stmt::While { cond: c2, body: b2, .. },
        ) => expr_eq(c1, c2) && block_eq(b1, b2),
        (
            Stmt::DoWhile { cond: c1, body: b1, .. },
            Stmt::DoWhile { cond: c2, body: b2, .. },
        ) => expr_eq(c1, c2) && block_eq(b1, b2),
        (
            Stmt::For { init: i1, cond: c1, step: s1, body: b1, .. },
            Stmt::For { init: i2, cond: c2, step: s2, body: b2, .. },
        ) => {
            opt_stmt_eq(i1.as_deref(), i2.as_deref())
                && opt_expr_eq(c1.as_ref(), c2.as_ref())
                && opt_stmt_eq(s1.as_deref(), s2.as_deref())
                && block_eq(b1, b2)
        }
        (Stmt::Return(v1, _), Stmt::Return(v2, _)) => opt_expr_eq(v1.as_ref(), v2.as_ref()),
        (Stmt::Break(_), Stmt::Break(_)) | (Stmt::Continue(_), Stmt::Continue(_)) => true,
        (Stmt::Block(x), Stmt::Block(y)) => block_eq(x, y),
        _ => false,
    }
}

fn opt_expr_eq(a: Option<&Expr>, b: Option<&Expr>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => expr_eq(x, y),
        _ => false,
    }
}

/// Expression equality modulo line numbers.
pub fn expr_eq(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::IntLit(x, _), Expr::IntLit(y, _)) => x == y,
        (Expr::FloatLit(x, _), Expr::FloatLit(y, _)) => x.to_bits() == y.to_bits(),
        (Expr::StrLit(x, _), Expr::StrLit(y, _)) => x == y,
        (Expr::CharLit(x, _), Expr::CharLit(y, _)) => x == y,
        (Expr::BoolLit(x, _), Expr::BoolLit(y, _)) => x == y,
        (Expr::Null(_), Expr::Null(_)) => true,
        (Expr::Var(x, _), Expr::Var(y, _)) => x == y,
        (
            Expr::Unary { op: o1, expr: e1, .. },
            Expr::Unary { op: o2, expr: e2, .. },
        ) => o1 == o2 && expr_eq(e1, e2),
        (
            Expr::Binary { op: o1, lhs: l1, rhs: r1, .. },
            Expr::Binary { op: o2, lhs: l2, rhs: r2, .. },
        ) => o1 == o2 && expr_eq(l1, l2) && expr_eq(r1, r2),
        (
            Expr::Call { callee: c1, args: a1, .. },
            Expr::Call { callee: c2, args: a2, .. },
        ) => {
            expr_eq(c1, c2)
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| expr_eq(x, y))
        }
        (
            Expr::Member { base: b1, field: f1, arrow: a1, .. },
            Expr::Member { base: b2, field: f2, arrow: a2, .. },
        ) => f1 == f2 && a1 == a2 && expr_eq(b1, b2),
        (
            Expr::Index { base: b1, index: i1, .. },
            Expr::Index { base: b2, index: i2, .. },
        ) => expr_eq(b1, b2) && expr_eq(i1, i2),
        (
            Expr::Cast { ty: t1, expr: e1, .. },
            Expr::Cast { ty: t2, expr: e2, .. },
        ) => t1 == t2 && expr_eq(e1, e2),
        (Expr::Sizeof(t1, _), Expr::Sizeof(t2, _)) => t1 == t2,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn roundtrip(src: &str) {
        let items = parse(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let printed = print_items(&items);
        let reparsed =
            parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert!(
            ast_eq_items(&items, &reparsed),
            "round-trip changed the AST:\n-- original --\n{src}\n-- printed --\n{printed}"
        );
    }

    #[test]
    fn roundtrips_core_constructs() {
        roundtrip(
            r#"
            struct node { int key; int (*fp)(); struct node* next; };
            struct outer { struct node inner; long** pp; const long v; };
            int g_count = 3;
            const char* banner = "hi\n\t\"q\"";
            extern void* dlopen(char* name, int flags);
            long hook(long x) { return x * 2 + 1; }
            int main() {
                struct node* p = (struct node*) malloc(sizeof(struct node));
                p->fp = null;
                int buf[8];
                buf[3] = 'x';
                int* q = &buf[0];
                q = q + 1;
                long (*h)(long x) = hook;
                long acc = h(4) + (long) g_count;
                if (acc > 3 && *q == 0) { acc = acc - 1; } else { acc = acc / 2; }
                while (acc > 100) { acc = acc / 2; break; }
                do { acc = acc + 1; } while (acc < 0);
                for (int i = 0; i < 4; i = i + 1) { continue; }
                { int shadow = 1; acc = acc + shadow; }
                print_int(acc);
                return 0;
            }
        "#,
        );
    }

    #[test]
    fn roundtrips_precedence_and_unary_nesting() {
        roundtrip("int f(int a, int b) { return -a * !(b + 2) % 3 << 1 ^ (a | b) & 7; }");
        roundtrip("void g(int** pp) { **pp = **pp + 1; (*pp)[0] = 7; }");
        roundtrip("int h() { return sizeof(struct x*) + sizeof(int (*)(long)); }");
        roundtrip("double d() { return 3.5 - -0.25; }");
    }

    #[test]
    fn roundtrips_for_header_variants() {
        roundtrip("int f() { for (;;) { break; } return 0; }");
        roundtrip("int g() { int i = 0; for (; i < 3;) { i = i + 1; } return i; }");
        roundtrip("int h() { for (int i = 9; ; i = i - 1) { if (i == 0) { break; } } return 1; }");
    }

    #[test]
    fn negative_int_literal_prints_as_hex_and_roundtrips() {
        // A folded negative literal — unreachable from the parser but
        // reachable from the minimizer — must survive print→parse.
        let items = vec![Item::Global {
            ty: AstType::Long,
            name: "g".into(),
            is_const: false,
            init: Some(Expr::IntLit(-5, 1)),
            line: 1,
        }];
        let printed = print_items(&items);
        assert!(printed.contains("0xfffffffffffffffb"), "{printed}");
        let reparsed = parse(&printed).unwrap();
        assert!(ast_eq_items(&items, &reparsed), "{printed}");
    }

    #[test]
    fn compound_assignment_desugars_then_roundtrips() {
        // `x += 2` parses to `x = x + 2`; the printed form must reparse to
        // the same desugared tree (print→parse is a fixpoint).
        let a = parse("int f() { int x = 1; x += 2; x++; return x; }").unwrap();
        let printed = print_items(&a);
        assert!(!printed.contains("+="), "{printed}");
        let b = parse(&printed).unwrap();
        assert!(ast_eq_items(&a, &b), "{printed}");
    }

    #[test]
    fn printed_source_compiles() {
        let src = r#"
            struct s0 { long v; struct s0* peer; long (*hook)(long x); };
            long bump(long x) { return x + 1; }
            int main() {
                struct s0* a = (struct s0*) malloc(sizeof(struct s0));
                a->hook = bump;
                a->v = a->hook(4);
                print_int(a->v);
                return 0;
            }
        "#;
        let printed = print_items(&parse(src).unwrap());
        crate::compile(&printed, "printed").unwrap_or_else(|e| panic!("{e}\n{printed}"));
    }
}
