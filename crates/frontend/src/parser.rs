//! Recursive-descent parser for MiniC.

use crate::ast::*;
use crate::error::CompileError;
use crate::token::{lex, SpannedTok, Tok};

/// Parses a MiniC translation unit.
///
/// # Errors
/// Returns the first lexical or syntactic error encountered.
pub fn parse(src: &str) -> Result<Vec<Item>, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.translation_unit()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> Result<(), CompileError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(CompileError::new(
                self.line(),
                format!("expected `{want}`, found `{}`", self.peek()),
            ))
        }
    }

    fn eat_ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(CompileError::new(
                self.line(),
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    /// Whether the current token can begin a type.
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwVoid
                | Tok::KwBool
                | Tok::KwChar
                | Tok::KwShort
                | Tok::KwInt
                | Tok::KwLong
                | Tok::KwDouble
                | Tok::KwStruct
                | Tok::KwConst
        )
    }

    // ---- types -----------------------------------------------------------

    /// Parses `[const] base *...` and returns (type, is_const).
    fn type_prefix(&mut self) -> Result<(AstType, bool), CompileError> {
        let mut is_const = false;
        if self.peek() == &Tok::KwConst {
            self.bump();
            is_const = true;
        }
        let base = match self.bump() {
            Tok::KwVoid => AstType::Void,
            Tok::KwBool => AstType::Bool,
            Tok::KwChar => AstType::Char,
            Tok::KwShort => AstType::Short,
            Tok::KwInt => AstType::Int,
            Tok::KwLong => AstType::Long,
            Tok::KwDouble => AstType::Double,
            Tok::KwStruct => AstType::Struct(self.eat_ident()?),
            other => {
                return Err(CompileError::new(
                    self.line(),
                    format!("expected a type, found `{other}`"),
                ))
            }
        };
        let mut ty = base;
        while self.peek() == &Tok::Star {
            self.bump();
            ty = ty.ptr();
        }
        // `T* const` / `T const` postfix const also accepted.
        if self.peek() == &Tok::KwConst {
            self.bump();
            is_const = true;
        }
        Ok((ty, is_const))
    }

    /// Parses a full abstract type (for casts and sizeof): a type prefix,
    /// optionally a function-pointer suffix `(*)(params)`.
    fn abstract_type(&mut self) -> Result<AstType, CompileError> {
        let (ty, _) = self.type_prefix()?;
        if self.peek() == &Tok::LParen && self.peek2() == &Tok::Star {
            // RET (*)(PARAMS)
            self.bump(); // (
            self.eat(&Tok::Star)?;
            self.eat(&Tok::RParen)?;
            let params = self.fnptr_params()?;
            return Ok(AstType::FuncPtr { ret: Box::new(ty), params });
        }
        Ok(ty)
    }

    fn fnptr_params(&mut self) -> Result<Vec<AstType>, CompileError> {
        self.eat(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let t = self.abstract_type()?;
                // parameter name is optional in a function-pointer type
                if let Tok::Ident(_) = self.peek() {
                    self.bump();
                }
                params.push(t);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        Ok(params)
    }

    /// Parses a declarator after a type prefix. Handles three forms:
    /// `name`, `name[N]`, and `(*name)(params)` (function pointer).
    /// Returns (full type, name).
    fn declarator(&mut self, base: AstType) -> Result<(AstType, String), CompileError> {
        if self.peek() == &Tok::LParen && self.peek2() == &Tok::Star {
            self.bump(); // (
            self.eat(&Tok::Star)?;
            let name = self.eat_ident()?;
            self.eat(&Tok::RParen)?;
            let params = self.fnptr_params()?;
            return Ok((AstType::FuncPtr { ret: Box::new(base), params }, name));
        }
        let name = self.eat_ident()?;
        if self.peek() == &Tok::LBracket {
            self.bump();
            let n = match self.bump() {
                Tok::Int(v) if v > 0 => v as u64,
                other => {
                    return Err(CompileError::new(
                        self.line(),
                        format!("expected positive array length, found `{other}`"),
                    ))
                }
            };
            self.eat(&Tok::RBracket)?;
            return Ok((AstType::Array(Box::new(base), n), name));
        }
        Ok((base, name))
    }

    // ---- items -----------------------------------------------------------

    fn translation_unit(&mut self) -> Result<Vec<Item>, CompileError> {
        let mut items = Vec::new();
        while self.peek() != &Tok::Eof {
            items.push(self.item()?);
        }
        Ok(items)
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        let line = self.line();
        // struct definition: `struct NAME {` (otherwise it's a type use)
        if self.peek() == &Tok::KwStruct {
            if let Tok::Ident(_) = self.peek2() {
                let brace = &self.toks[(self.pos + 2).min(self.toks.len() - 1)].tok;
                if brace == &Tok::LBrace {
                    return self.struct_def();
                }
            }
        }
        let is_extern = if self.peek() == &Tok::KwExtern {
            self.bump();
            true
        } else {
            false
        };
        let (base, is_const) = self.type_prefix()?;
        let (ty, name) = self.declarator(base)?;
        if self.peek() == &Tok::LParen && !matches!(ty, AstType::FuncPtr { .. }) {
            // function definition/declaration
            let params = self.param_list()?;
            if is_extern || self.peek() == &Tok::Semi {
                self.eat(&Tok::Semi)?;
                return Ok(Item::Func { ret: ty, name, params, body: None, is_extern: true, line });
            }
            let body = self.block()?;
            return Ok(Item::Func { ret: ty, name, params, body: Some(body), is_extern: false, line });
        }
        // global variable
        let init = if self.peek() == &Tok::Assign {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        self.eat(&Tok::Semi)?;
        Ok(Item::Global { ty, name, is_const, init, line })
    }

    fn struct_def(&mut self) -> Result<Item, CompileError> {
        let line = self.line();
        self.eat(&Tok::KwStruct)?;
        let name = self.eat_ident()?;
        self.eat(&Tok::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &Tok::RBrace {
            let fline = self.line();
            let (base, is_const) = self.type_prefix()?;
            let (ty, fname) = self.declarator(base)?;
            self.eat(&Tok::Semi)?;
            fields.push(FieldDecl { ty, name: fname, is_const, line: fline });
        }
        self.eat(&Tok::RBrace)?;
        self.eat(&Tok::Semi)?;
        Ok(Item::Struct { name, fields, line })
    }

    fn param_list(&mut self) -> Result<Vec<Param>, CompileError> {
        self.eat(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            // `(void)` empty parameter list
            if self.peek() == &Tok::KwVoid && self.peek2() == &Tok::RParen {
                self.bump();
            } else {
                loop {
                    let line = self.line();
                    let (base, is_const) = self.type_prefix()?;
                    let (ty, name) = self.declarator(base)?;
                    params.push(Param { ty, name, is_const, line });
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        self.eat(&Tok::RParen)?;
        Ok(params)
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self) -> Result<Block, CompileError> {
        self.eat(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.eat(&Tok::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek() {
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::KwIf => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let then_blk = self.block_or_single()?;
                let else_blk = if self.peek() == &Tok::KwElse {
                    self.bump();
                    Some(self.block_or_single()?)
                } else {
                    None
                };
                Ok(Stmt::If { cond, then_blk, else_blk, line })
            }
            Tok::KwWhile => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body, line })
            }
            Tok::KwDo => {
                self.bump();
                let body = self.block_or_single()?;
                self.eat(&Tok::KwWhile)?;
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::DoWhile { cond, body, line })
            }
            Tok::KwFor => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let init = if self.peek() == &Tok::Semi {
                    self.bump();
                    None
                } else {
                    let s = self.simple_stmt()?;
                    self.eat(&Tok::Semi)?;
                    Some(Box::new(s))
                };
                let cond = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::Semi)?;
                let step = if self.peek() == &Tok::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.eat(&Tok::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::For { init, cond, step, body, line })
            }
            Tok::KwReturn => {
                self.bump();
                let v = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Return(v, line))
            }
            Tok::KwBreak => {
                self.bump();
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Break(line))
            }
            Tok::KwContinue => {
                self.bump();
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Continue(line))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.eat(&Tok::Semi)?;
                Ok(s)
            }
        }
    }

    fn block_or_single(&mut self) -> Result<Block, CompileError> {
        if self.peek() == &Tok::LBrace {
            self.block()
        } else {
            Ok(Block { stmts: vec![self.stmt()?] })
        }
    }

    /// A declaration, assignment, or expression statement (no trailing
    /// semicolon — the caller owns it, so `for (...)` headers can reuse
    /// this).
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if self.at_type() {
            let (base, is_const) = self.type_prefix()?;
            let (ty, name) = self.declarator(base)?;
            let init = if self.peek() == &Tok::Assign {
                self.bump();
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Decl { ty, name, is_const, init, line });
        }
        let e = self.expr()?;
        match self.peek().clone() {
            Tok::Assign => {
                self.bump();
                let value = self.expr()?;
                Ok(Stmt::Assign { target: e, value, line })
            }
            Tok::PlusAssign | Tok::MinusAssign | Tok::StarAssign => {
                let op = match self.bump() {
                    Tok::PlusAssign => BinOpAst::Add,
                    Tok::MinusAssign => BinOpAst::Sub,
                    _ => BinOpAst::Mul,
                };
                let rhs = self.expr()?;
                // `x op= e` desugars to `x = x op e`.
                let value = Expr::Binary {
                    op,
                    lhs: Box::new(e.clone()),
                    rhs: Box::new(rhs),
                    line,
                };
                Ok(Stmt::Assign { target: e, value, line })
            }
            Tok::PlusPlus | Tok::MinusMinus => {
                let op = if self.bump() == Tok::PlusPlus {
                    BinOpAst::Add
                } else {
                    BinOpAst::Sub
                };
                let value = Expr::Binary {
                    op,
                    lhs: Box::new(e.clone()),
                    rhs: Box::new(Expr::IntLit(1, line)),
                    line,
                };
                Ok(Stmt::Assign { target: e, value, line })
            }
            _ => Ok(Stmt::Expr(e)),
        }
    }

    // ---- expressions (precedence climbing) --------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.bin_expr(0)
    }

    fn bin_op_at(&self, level: u8) -> Option<BinOpAst> {
        let t = self.peek();
        let op = match (level, t) {
            (0, Tok::PipePipe) => BinOpAst::LogOr,
            (1, Tok::AmpAmp) => BinOpAst::LogAnd,
            (2, Tok::Pipe) => BinOpAst::BitOr,
            (3, Tok::Caret) => BinOpAst::BitXor,
            (4, Tok::Amp) => BinOpAst::BitAnd,
            (5, Tok::EqEq) => BinOpAst::Eq,
            (5, Tok::NotEq) => BinOpAst::Ne,
            (6, Tok::Lt) => BinOpAst::Lt,
            (6, Tok::Le) => BinOpAst::Le,
            (6, Tok::Gt) => BinOpAst::Gt,
            (6, Tok::Ge) => BinOpAst::Ge,
            (7, Tok::Shl) => BinOpAst::Shl,
            (7, Tok::Shr) => BinOpAst::Shr,
            (8, Tok::Plus) => BinOpAst::Add,
            (8, Tok::Minus) => BinOpAst::Sub,
            (9, Tok::Star) => BinOpAst::Mul,
            (9, Tok::Slash) => BinOpAst::Div,
            (9, Tok::Percent) => BinOpAst::Rem,
            _ => return None,
        };
        Some(op)
    }

    fn bin_expr(&mut self, level: u8) -> Result<Expr, CompileError> {
        if level > 9 {
            return self.unary();
        }
        let mut lhs = self.bin_expr(level + 1)?;
        while let Some(op) = self.bin_op_at(level) {
            let line = self.line();
            self.bump();
            let rhs = self.bin_expr(level + 1)?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(self.unary()?), line })
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(self.unary()?), line })
            }
            Tok::Star => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Deref, expr: Box::new(self.unary()?), line })
            }
            Tok::Amp => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::AddrOf, expr: Box::new(self.unary()?), line })
            }
            Tok::KwSizeof => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let ty = self.abstract_type()?;
                self.eat(&Tok::RParen)?;
                Ok(Expr::Sizeof(ty, line))
            }
            Tok::LParen => {
                // cast or parenthesized expression
                let save = self.pos;
                self.bump();
                if self.at_type() {
                    let ty = self.abstract_type()?;
                    self.eat(&Tok::RParen)?;
                    let inner = self.unary()?;
                    return Ok(Expr::Cast { ty, expr: Box::new(inner), line });
                }
                self.pos = save;
                self.postfix()
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == &Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Tok::RParen)?;
                    e = Expr::Call { callee: Box::new(e), args, line };
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.eat(&Tok::RBracket)?;
                    e = Expr::Index { base: Box::new(e), index: Box::new(idx), line };
                }
                Tok::Dot => {
                    self.bump();
                    let field = self.eat_ident()?;
                    e = Expr::Member { base: Box::new(e), field, arrow: false, line };
                }
                Tok::Arrow => {
                    self.bump();
                    let field = self.eat_ident()?;
                    e = Expr::Member { base: Box::new(e), field, arrow: true, line };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::IntLit(v, line)),
            Tok::Float(v) => Ok(Expr::FloatLit(v, line)),
            Tok::Str(s) => Ok(Expr::StrLit(s, line)),
            Tok::Char(c) => Ok(Expr::CharLit(c, line)),
            Tok::KwTrue => Ok(Expr::BoolLit(true, line)),
            Tok::KwFalse => Ok(Expr::BoolLit(false, line)),
            Tok::KwNull => Ok(Expr::Null(line)),
            Tok::Ident(name) => Ok(Expr::Var(name, line)),
            Tok::LParen => {
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(CompileError::new(
                line,
                format!("expected expression, found `{other}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_struct_and_function() {
        let src = r#"
            struct node { int key; int (*fp)(); struct node* next; };
            int main() {
                struct node* p = (struct node*) malloc(sizeof(struct node));
                p->key = 1;
                return p->key;
            }
        "#;
        let items = parse(src).unwrap();
        assert_eq!(items.len(), 2);
        match &items[0] {
            Item::Struct { name, fields, .. } => {
                assert_eq!(name, "node");
                assert_eq!(fields.len(), 3);
                assert!(matches!(fields[1].ty, AstType::FuncPtr { .. }));
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn parse_extern_and_globals() {
        let src = r#"
            extern void* dlopen(char* name, int flags);
            const char* msg = "hello";
            int counter;
        "#;
        let items = parse(src).unwrap();
        assert!(matches!(&items[0], Item::Func { is_extern: true, body: None, .. }));
        assert!(matches!(&items[1], Item::Global { is_const: true, .. }));
        assert!(matches!(&items[2], Item::Global { init: None, .. }));
    }

    #[test]
    fn parse_control_flow() {
        let src = r#"
            int f(int n) {
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { acc = acc + i; } else acc = acc - 1;
                }
                while (acc > 100) { acc = acc / 2; }
                return acc;
            }
        "#;
        let items = parse(src).unwrap();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn parse_pointer_expressions() {
        let src = r#"
            void g(int** pp, char* s) {
                **pp = 5;
                int* q = *pp;
                q = q + 1;
                s[3] = 'x';
                (*pp)[0] = 7;
            }
        "#;
        parse(src).unwrap();
    }

    #[test]
    fn parse_function_pointer_declarations() {
        let src = r#"
            void h() {
                int (*cb)(int x, int y) = null;
                void (*v)() = null;
                cb(1, 2);
            }
        "#;
        parse(src).unwrap();
    }

    #[test]
    fn parse_casts_vs_parens() {
        let src = r#"
            void k(void* v) {
                int* a = (int*) v;
                int b = (1 + 2) * 3;
                void (*f)(void* p) = (void (*)(void* p)) v;
            }
        "#;
        parse(src).unwrap();
    }

    #[test]
    fn precedence_shapes_tree() {
        let items = parse("int f() { return 1 + 2 * 3; }").unwrap();
        let Item::Func { body: Some(b), .. } = &items[0] else { panic!() };
        let Stmt::Return(Some(Expr::Binary { op, rhs, .. }), _) = &b.stmts[0] else {
            panic!()
        };
        assert_eq!(*op, BinOpAst::Add);
        assert!(matches!(**rhs, Expr::Binary { op: BinOpAst::Mul, .. }));
    }

    #[test]
    fn error_reports_line() {
        let err = parse("int f() {\n  return ;;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
