//! Compile-time diagnostics.

use std::fmt;

/// A frontend diagnostic with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Source line the error was detected on.
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl CompileError {
    /// Creates an error.
    pub fn new(line: u32, msg: impl Into<String>) -> Self {
        CompileError { line, msg: msg.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_with_line() {
        let e = CompileError::new(7, "unexpected token");
        assert_eq!(e.to_string(), "line 7: unexpected token");
    }
}
