//! # rsti-frontend — the MiniC compiler frontend
//!
//! MiniC is the C subset this reproduction uses in place of Clang's C/C++
//! input. It is rich enough to express every program shape the RSTI paper's
//! analysis distinguishes: struct types (self-referential, nested,
//! function-pointer members), pointers at any depth, universal pointers
//! (`void*`, `char*`), explicit casts, `const` permissions, globals, heap
//! allocation, pointer arithmetic, escaping locals, and `extern`
//! (uninstrumented, "libc") functions.
//!
//! The pipeline is [`token::lex`] → [`parser::parse`] → [`lower`] →
//! verified [`rsti_ir::Module`] carrying full STI debug metadata.
//!
//! # Example
//!
//! ```
//! let m = rsti_frontend::compile(r#"
//!     struct node { int key; struct node* next; };
//!     int main() {
//!         struct node* p = (struct node*) malloc(sizeof(struct node));
//!         p->key = 41;
//!         p->key = p->key + 1;
//!         return p->key;
//!     }
//! "#, "demo").unwrap();
//! assert!(m.func_by_name("main").is_some());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lower;
pub mod parser;
pub mod printer;
pub mod token;

pub use error::CompileError;
pub use lower::compile;
pub use parser::parse;
pub use printer::{ast_eq_items, expr_eq, print_expr, print_items};

#[cfg(test)]
mod tests {
    use super::*;
    use rsti_ir::{Inst, Scope, Type, VarKind};

    fn ok(src: &str) -> rsti_ir::Module {
        match compile(src, "test") {
            Ok(m) => m,
            Err(e) => panic!("compile failed: {e}\n{src}"),
        }
    }

    #[test]
    fn compiles_paper_fig6_composite_example() {
        // Figure 6 of the paper, almost verbatim.
        let m = ok(r#"
            void hello_func() { print_str("Hello!"); }
            struct node {
                int key;
                int (*fp)();
                struct node* next;
            };
            int main() {
                struct node* ptr = (struct node*) malloc(sizeof(struct node));
                ptr->fp = hello_func;
                ptr->fp();
                return 0;
            }
        "#);
        let main = m.func_by_name("main").unwrap();
        let f = m.func(main);
        // There must be a bitcast (the explicit cast), a fieldaddr store of
        // the function pointer, and an indirect call.
        assert!(f.insts().any(|n| matches!(n.inst, Inst::BitCast { .. })));
        assert!(f.insts().any(|n| matches!(n.inst, Inst::CallIndirect { .. })));
        assert!(f.insts().any(|n| matches!(n.inst, Inst::Malloc { .. })));
    }

    #[test]
    fn debug_metadata_carries_scope_type_permission() {
        let m = ok(r#"
            int main() {
                const void* cp = malloc(1);
                return 0;
            }
        "#);
        let main = m.func_by_name("main").unwrap();
        let cp = m
            .vars
            .iter()
            .find(|v| v.name == "cp")
            .expect("cp has a VarInfo");
        assert_eq!(cp.scope, Scope::Function(main.0));
        assert!(cp.is_const, "const permission recorded");
        assert_eq!(m.types.display(cp.ty), "void*");
        assert_eq!(cp.kind, VarKind::Local);
    }

    #[test]
    fn implicit_void_ptr_conversion_emits_bitcast() {
        let m = ok(r#"
            void take(void* v) {}
            int main() {
                int* p = null;
                take(p);
                return 0;
            }
        "#);
        let main = m.func_by_name("main").unwrap();
        let f = m.func(main);
        assert!(
            f.insts().any(|n| matches!(&n.inst, Inst::BitCast { to, .. }
                if m.types.display(*to) == "void*")),
            "{}",
            rsti_ir::print_module(&m)
        );
    }

    #[test]
    fn control_flow_lowers_and_verifies() {
        ok(r#"
            int collatz_steps(int n) {
                int steps = 0;
                while (n != 1) {
                    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                    steps = steps + 1;
                    if (steps > 1000) { break; }
                }
                return steps;
            }
            int main() {
                int total = 0;
                for (int i = 1; i < 30; i = i + 1) {
                    total = total + collatz_steps(i);
                }
                print_int(total);
                return total;
            }
        "#);
    }

    #[test]
    fn arrays_pointer_arithmetic_and_strings() {
        ok(r#"
            int sum(int* xs, int n) {
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) { acc = acc + xs[i]; }
                return acc;
            }
            int main() {
                int buf[8];
                for (int i = 0; i < 8; i = i + 1) { buf[i] = i; }
                int* p = &buf[0];
                p = p + 3;
                *p = 100;
                char* s = "abc";
                return sum(buf, 8);
            }
        "#);
    }

    #[test]
    fn double_pointers_and_addr_of() {
        ok(r#"
            void bump(int** pp) { **pp = **pp + 1; }
            int main() {
                int x = 5;
                int* p = &x;
                bump(&p);
                return x;
            }
        "#);
    }

    #[test]
    fn function_pointer_variables_and_indirect_calls() {
        let m = ok(r#"
            int add(int a, int b) { return a + b; }
            int mul(int a, int b) { return a * b; }
            int main() {
                int (*op)(int a, int b) = add;
                int r = op(2, 3);
                op = mul;
                r = r + op(2, 3);
                return r;
            }
        "#);
        let main = m.func_by_name("main").unwrap();
        let count = m
            .func(main)
            .insts()
            .filter(|n| matches!(n.inst, Inst::CallIndirect { .. }))
            .count();
        assert_eq!(count, 2);
    }

    #[test]
    fn extern_functions_are_external() {
        let m = ok(r#"
            extern void* dlopen(char* name, int flags);
            int main() {
                void* h = dlopen("libm.so", 2);
                return 0;
            }
        "#);
        let f = m.func_by_name("dlopen").unwrap();
        assert!(m.func(f).is_external);
    }

    #[test]
    fn globals_with_initializers() {
        let m = ok(r#"
            int counter = 3;
            const char* banner = "hi";
            void tick() { counter = counter + 1; }
            int main() { tick(); tick(); return counter; }
        "#);
        assert_eq!(m.globals.len(), 2);
        assert!(m.vars.iter().any(|v| v.name == "banner" && v.is_const));
    }

    #[test]
    fn nested_structs_resolve() {
        let m = ok(r#"
            struct bar { void* a; };
            struct foo { struct bar inner; int x; };
            int main() {
                struct foo f;
                f.inner.a = malloc(4);
                f.x = 2;
                return f.x;
            }
        "#);
        let sid = m.types.struct_by_name("foo").unwrap();
        let def = m.types.struct_def(sid);
        assert!(matches!(m.types.get(def.fields[0].ty), Type::Struct(_)));
    }

    #[test]
    fn short_circuit_evaluation() {
        // The RHS dereferences null; && must not evaluate it when the LHS
        // is false. We can only check the shape here; the VM test suite
        // checks behaviour.
        ok(r#"
            int main() {
                int* p = null;
                if (p != null && *p == 3) { return 1; }
                return 0;
            }
        "#);
    }

    #[test]
    fn do_while_and_compound_assignment() {
        let m = ok(r#"
            int main() {
                int acc = 0;
                int i = 0;
                do {
                    acc += i * 2;
                    i++;
                } while (i < 5);
                acc -= 3;
                acc *= 2;
                int j = 10;
                j--;
                print_int(acc + j);
                return acc;
            }
        "#);
        assert!(m.func_by_name("main").is_some());
    }

    #[test]
    fn compound_assignment_on_lvalues() {
        ok(r#"
            struct acc { long total; };
            int main() {
                struct acc* a = (struct acc*) malloc(sizeof(struct acc));
                a->total = 1;
                a->total += 5;
                int buf[3];
                buf[0] = 1;
                buf[0] += 2;
                return (int) a->total + buf[0];
            }
        "#);
    }

    #[test]
    fn errors_carry_lines() {
        let e = compile("int main() {\n  unknown_fn();\n  return 0;\n}", "t").unwrap_err();
        assert_eq!(e.line, 2);
        let e = compile("int main() { const int x = 1; x = 2; return x; }", "t").unwrap_err();
        assert!(e.msg.contains("const"));
    }

    #[test]
    fn diagnostic_coverage() {
        let cases: &[(&str, &str)] = &[
            ("int main() { return 0; } int main() { return 1; }", "duplicate function"),
            ("struct a { int x; }; struct a { int y; }; int main() { return 0; }", "duplicate struct"),
            ("int g; int g; int main() { return 0; }", "duplicate global"),
            ("int main() { int x = 1; int x = 2; return x; }", "duplicate variable"),
            ("int main() { break; }", "break outside loop"),
            ("int main() { continue; }", "continue outside loop"),
            ("void f() { return 1; } int main() { return 0; }", "void function returns"),
            ("int f() { return; } int main() { return 0; }", "missing return value"),
            ("int main() { void* v = null; return *v; }", "dereference of void*"),
            ("int main() { int x = 0; x->y = 1; return 0; }", "`->` on non-pointer"),
            ("int main() { 5 = 3; return 0; }", "not assignable"),
            ("int main() { malloc(); return 0; }", "malloc takes one argument"),
            ("int main() { int x = 1; return x(); }", "call of non-function"),
            ("int main() { double d = 1.0; int* p = (int*) d; return 0; }", "unsupported cast"),
        ];
        for (src, needle) in cases {
            let e = compile(src, "t").expect_err(src);
            assert!(
                e.msg.contains(needle),
                "expected `{needle}` in `{}` for:\n{src}",
                e.msg
            );
        }
    }

    #[test]
    fn parse_error_coverage() {
        for src in [
            "int main() {",                     // unterminated body
            "struct s { int x; }",              // missing semicolon
            "int main() { int; }",              // missing declarator
            "int main() { if (1 { } return 0; }", // bad parens
            "int main() { return (1 + ; }",     // bad expression
            "int main() { int a[0]; return 0; }", // zero-length array
            "int 5x() { return 0; }",           // bad identifier
            "/* unterminated",                  // comment error
            "int main() { char c = 'ab; }",     // bad char literal
        ] {
            assert!(compile(src, "t").is_err(), "should reject: {src}");
        }
    }

    #[test]
    fn type_errors_rejected() {
        assert!(compile("int main() { int x = \"s\"; return 0; }", "t").is_err());
        assert!(compile("int main() { struct nope* p = null; return 0; }", "t").is_err());
        assert!(compile("void f() {} int main() { return f(1); }", "t").is_err());
    }
}
