//! The MiniC abstract syntax tree.
//!
//! MiniC is the C subset the reproduction compiles: it covers every
//! construct the paper's analysis distinguishes — struct types (including
//! self-referential and nested ones), pointers at any depth, function
//! pointers, explicit casts, `const` permissions, globals, heap allocation,
//! pointer arithmetic, and external (uninstrumented) functions.

/// A syntactic type, before resolution against the IR type table.
#[derive(Debug, Clone, PartialEq)]
pub enum AstType {
    /// `void`
    Void,
    /// `bool`
    Bool,
    /// `char`
    Char,
    /// `short`
    Short,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `double`
    Double,
    /// `struct NAME`
    Struct(String),
    /// `T*`
    Ptr(Box<AstType>),
    /// `T name[N]` — only in declarations.
    Array(Box<AstType>, u64),
    /// `RET (*)(PARAMS)` — a function-pointer type.
    FuncPtr {
        /// Return type.
        ret: Box<AstType>,
        /// Parameter types.
        params: Vec<AstType>,
    },
}

impl AstType {
    /// Wraps this type in a pointer.
    pub fn ptr(self) -> AstType {
        AstType::Ptr(Box::new(self))
    }
}

/// A struct field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Field type.
    pub ty: AstType,
    /// Field name.
    pub name: String,
    /// Declared `const`.
    pub is_const: bool,
    /// Source line.
    pub line: u32,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter type.
    pub ty: AstType,
    /// Parameter name.
    pub name: String,
    /// Declared `const`.
    pub is_const: bool,
    /// Source line.
    pub line: u32,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `struct NAME { fields };`
    Struct {
        /// Struct name.
        name: String,
        /// Field declarations.
        fields: Vec<FieldDecl>,
        /// Source line.
        line: u32,
    },
    /// A global variable definition.
    Global {
        /// Declared type.
        ty: AstType,
        /// Name.
        name: String,
        /// Declared `const`.
        is_const: bool,
        /// Optional initializer (constant expressions only).
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// A function definition or `extern` declaration.
    Func {
        /// Return type.
        ret: AstType,
        /// Name.
        name: String,
        /// Parameters.
        params: Vec<Param>,
        /// Body; `None` for `extern` declarations (uninstrumented library
        /// functions — the paper's "libc").
        body: Option<Block>,
        /// Whether declared `extern`.
        is_extern: bool,
        /// Source line.
        line: u32,
    },
}

/// A brace-delimited statement list. Per the paper (§4.4), a compound
/// statement does **not** open a new STI scope; blocks exist purely for
/// control flow.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A local variable declaration.
    Decl {
        /// Declared type.
        ty: AstType,
        /// Name.
        name: String,
        /// Declared `const`.
        is_const: bool,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// An expression evaluated for effect (usually a call).
    Expr(Expr),
    /// `target = value;` — target must be an lvalue.
    Assign {
        /// Assignment target.
        target: Expr,
        /// Assigned value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `if (cond) then_blk [else else_blk]`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
        /// Source line.
        line: u32,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Condition, checked after each iteration.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
    },
    /// `for (init; cond; step) body`
    For {
        /// Optional init statement (decl or assignment).
        init: Option<Box<Stmt>>,
        /// Optional condition.
        cond: Option<Expr>,
        /// Optional step statement.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
    },
    /// `return [expr];`
    Return(Option<Expr>, u32),
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
    /// A nested block.
    Block(Block),
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Pointer dereference `*e`.
    Deref,
    /// Address-of `&e`.
    AddrOf,
}

/// A binary operator (C spelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // one-to-one with C operators
pub enum BinOpAst {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    LogAnd,
    LogOr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64, u32),
    /// Float literal.
    FloatLit(f64, u32),
    /// String literal.
    StrLit(String, u32),
    /// Character literal.
    CharLit(u8, u32),
    /// `true`/`false`.
    BoolLit(bool, u32),
    /// `null`.
    Null(u32),
    /// A variable (or function) reference.
    Var(String, u32),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOpAst,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// A call; `callee` may be a function name ([`Expr::Var`]) or any
    /// expression evaluating to a function pointer.
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `base.field` (`arrow = false`) or `base->field` (`arrow = true`).
    Member {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `->` vs `.`.
        arrow: bool,
        /// Source line.
        line: u32,
    },
    /// `base[index]`.
    Index {
        /// Base expression (array or pointer).
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `(T) expr`.
    Cast {
        /// Target type.
        ty: AstType,
        /// Operand.
        expr: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `sizeof(T)`.
    Sizeof(AstType, u32),
}

impl Expr {
    /// The source line of an expression.
    pub fn line(&self) -> u32 {
        match self {
            Expr::IntLit(_, l)
            | Expr::FloatLit(_, l)
            | Expr::StrLit(_, l)
            | Expr::CharLit(_, l)
            | Expr::BoolLit(_, l)
            | Expr::Null(l)
            | Expr::Var(_, l)
            | Expr::Sizeof(_, l) => *l,
            Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Call { line, .. }
            | Expr::Member { line, .. }
            | Expr::Index { line, .. }
            | Expr::Cast { line, .. } => *line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_ptr_helper() {
        let t = AstType::Int.ptr().ptr();
        assert_eq!(
            t,
            AstType::Ptr(Box::new(AstType::Ptr(Box::new(AstType::Int))))
        );
    }

    #[test]
    fn expr_lines() {
        let e = Expr::Binary {
            op: BinOpAst::Add,
            lhs: Box::new(Expr::IntLit(1, 3)),
            rhs: Box::new(Expr::IntLit(2, 3)),
            line: 3,
        };
        assert_eq!(e.line(), 3);
    }
}
