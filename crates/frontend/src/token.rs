//! Lexical analysis for MiniC.

use crate::error::CompileError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals & identifiers
    /// An integer literal.
    Int(i64),
    /// A floating literal.
    Float(f64),
    /// A string literal (contents, unescaped).
    Str(String),
    /// A character literal, lexed to its byte value.
    Char(u8),
    /// An identifier.
    Ident(String),

    // keywords
    /// `void`
    KwVoid,
    /// `bool`
    KwBool,
    /// `char`
    KwChar,
    /// `short`
    KwShort,
    /// `int`
    KwInt,
    /// `long`
    KwLong,
    /// `double`
    KwDouble,
    /// `struct`
    KwStruct,
    /// `const`
    KwConst,
    /// `extern`
    KwExtern,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `sizeof`
    KwSizeof,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,
    /// `null` (MiniC spells `NULL` this way too)
    KwNull,

    // punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `|`
    Pipe,
    /// `||`
    PipePipe,
    /// `^`
    Caret,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `do`
    KwDo,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,

    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Char(c) => write!(f, "'{}'", *c as char),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Eof => write!(f, "<eof>"),
            other => {
                let s = match other {
                    Tok::KwVoid => "void",
                    Tok::KwBool => "bool",
                    Tok::KwChar => "char",
                    Tok::KwShort => "short",
                    Tok::KwInt => "int",
                    Tok::KwLong => "long",
                    Tok::KwDouble => "double",
                    Tok::KwStruct => "struct",
                    Tok::KwConst => "const",
                    Tok::KwExtern => "extern",
                    Tok::KwIf => "if",
                    Tok::KwElse => "else",
                    Tok::KwWhile => "while",
                    Tok::KwFor => "for",
                    Tok::KwReturn => "return",
                    Tok::KwBreak => "break",
                    Tok::KwContinue => "continue",
                    Tok::KwSizeof => "sizeof",
                    Tok::KwTrue => "true",
                    Tok::KwFalse => "false",
                    Tok::KwNull => "null",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Semi => ";",
                    Tok::Comma => ",",
                    Tok::Dot => ".",
                    Tok::Arrow => "->",
                    Tok::Amp => "&",
                    Tok::AmpAmp => "&&",
                    Tok::Pipe => "|",
                    Tok::PipePipe => "||",
                    Tok::Caret => "^",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Bang => "!",
                    Tok::Assign => "=",
                    Tok::PlusAssign => "+=",
                    Tok::MinusAssign => "-=",
                    Tok::StarAssign => "*=",
                    Tok::PlusPlus => "++",
                    Tok::MinusMinus => "--",
                    Tok::KwDo => "do",
                    Tok::EqEq => "==",
                    Tok::NotEq => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::Shl => "<<",
                    Tok::Shr => ">>",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Source line.
    pub line: u32,
}

/// Lexes MiniC source into tokens (with a trailing [`Tok::Eof`]).
///
/// # Errors
/// Returns a [`CompileError`] for unterminated strings/chars or unknown
/// characters.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, CompileError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;

    let kw = |s: &str| -> Option<Tok> {
        Some(match s {
            "void" => Tok::KwVoid,
            "bool" => Tok::KwBool,
            "char" => Tok::KwChar,
            "short" => Tok::KwShort,
            "int" => Tok::KwInt,
            "long" => Tok::KwLong,
            "double" => Tok::KwDouble,
            "do" => Tok::KwDo,
            "struct" => Tok::KwStruct,
            "const" => Tok::KwConst,
            "extern" => Tok::KwExtern,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "while" => Tok::KwWhile,
            "for" => Tok::KwFor,
            "return" => Tok::KwReturn,
            "break" => Tok::KwBreak,
            "continue" => Tok::KwContinue,
            "sizeof" => Tok::KwSizeof,
            "true" => Tok::KwTrue,
            "false" => Tok::KwFalse,
            "null" | "NULL" => Tok::KwNull,
            _ => return None,
        })
    };

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                // hex literal
                if c == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'x' {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text = &src[start + 2..i];
                    // Parse as u64 and reinterpret: C-legal literals in
                    // [0x8000000000000000, 0xFFFFFFFFFFFFFFFF] (e.g. the
                    // all-ones mask) wrap to negative i64, matching C
                    // unsigned-wrap semantics, instead of failing to lex.
                    let v = u64::from_str_radix(text, 16)
                        .map_err(|_| CompileError::new(line, "bad hex literal"))?;
                    out.push(SpannedTok { tok: Tok::Int(v as i64), line });
                    continue;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| CompileError::new(line, "bad float"))?)
                } else {
                    Tok::Int(text.parse().map_err(|_| CompileError::new(line, "bad int"))?)
                };
                out.push(SpannedTok { tok, line });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &src[start..i];
                let tok = kw(text).unwrap_or_else(|| Tok::Ident(text.to_string()));
                out.push(SpannedTok { tok, line });
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(CompileError::new(line, "unterminated string"));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            s.push(match bytes[i + 1] {
                                b'n' => '\n',
                                b't' => '\t',
                                b'0' => '\0',
                                b'\\' => '\\',
                                b'"' => '"',
                                other => other as char,
                            });
                            i += 2;
                        }
                        b'\n' => return Err(CompileError::new(line, "newline in string")),
                        other => {
                            s.push(other as char);
                            i += 1;
                        }
                    }
                }
                out.push(SpannedTok { tok: Tok::Str(s), line });
            }
            b'\'' => {
                if i + 2 >= bytes.len() {
                    return Err(CompileError::new(line, "unterminated char literal"));
                }
                let (v, consumed) = if bytes[i + 1] == b'\\' {
                    let v = match bytes[i + 2] {
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'0' => 0,
                        other => other,
                    };
                    (v, 4)
                } else {
                    (bytes[i + 1], 3)
                };
                if bytes[i + consumed - 1] != b'\'' {
                    return Err(CompileError::new(line, "unterminated char literal"));
                }
                out.push(SpannedTok { tok: Tok::Char(v), line });
                i += consumed;
            }
            _ => {
                // operators & punctuation (longest match first); match on
                // bytes — slicing `src` here could split a UTF-8 char.
                let next = if i + 1 < bytes.len() { bytes[i + 1] } else { 0 };
                let tok2 = match (c, next) {
                    (b'-', b'>') => Some(Tok::Arrow),
                    (b'+', b'=') => Some(Tok::PlusAssign),
                    (b'-', b'=') => Some(Tok::MinusAssign),
                    (b'*', b'=') => Some(Tok::StarAssign),
                    (b'+', b'+') => Some(Tok::PlusPlus),
                    (b'-', b'-') => Some(Tok::MinusMinus),
                    (b'&', b'&') => Some(Tok::AmpAmp),
                    (b'|', b'|') => Some(Tok::PipePipe),
                    (b'=', b'=') => Some(Tok::EqEq),
                    (b'!', b'=') => Some(Tok::NotEq),
                    (b'<', b'=') => Some(Tok::Le),
                    (b'>', b'=') => Some(Tok::Ge),
                    (b'<', b'<') => Some(Tok::Shl),
                    (b'>', b'>') => Some(Tok::Shr),
                    _ => None,
                };
                if let Some(t) = tok2 {
                    out.push(SpannedTok { tok: t, line });
                    i += 2;
                    continue;
                }
                let tok1 = match c {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b';' => Tok::Semi,
                    b',' => Tok::Comma,
                    b'.' => Tok::Dot,
                    b'&' => Tok::Amp,
                    b'|' => Tok::Pipe,
                    b'^' => Tok::Caret,
                    b'+' => Tok::Plus,
                    b'-' => Tok::Minus,
                    b'*' => Tok::Star,
                    b'/' => Tok::Slash,
                    b'%' => Tok::Percent,
                    b'!' => Tok::Bang,
                    b'=' => Tok::Assign,
                    b'<' => Tok::Lt,
                    b'>' => Tok::Gt,
                    other => {
                        return Err(CompileError::new(
                            line,
                            format!("unexpected character `{}`", other as char),
                        ))
                    }
                };
                out.push(SpannedTok { tok: tok1, line });
                i += 1;
            }
        }
    }
    out.push(SpannedTok { tok: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lex_declaration() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_arrow_and_comparisons() {
        assert_eq!(
            toks("p->next >= q << 1"),
            vec![
                Tok::Ident("p".into()),
                Tok::Arrow,
                Tok::Ident("next".into()),
                Tok::Ge,
                Tok::Ident("q".into()),
                Tok::Shl,
                Tok::Int(1),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_comments_and_lines() {
        let ts = lex("int a; // c1\n/* c2\nc3 */ int b;").unwrap();
        let b_line = ts
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap()
            .line;
        assert_eq!(b_line, 3);
    }

    #[test]
    fn lex_strings_and_chars() {
        assert_eq!(
            toks(r#""hi\n" 'a' '\n'"#),
            vec![Tok::Str("hi\n".into()), Tok::Char(b'a'), Tok::Char(b'\n'), Tok::Eof]
        );
    }

    #[test]
    fn lex_hex() {
        assert_eq!(toks("0xFF"), vec![Tok::Int(255), Tok::Eof]);
    }

    #[test]
    fn lex_hex_at_signedness_boundary() {
        // Largest literal that fits i64 directly...
        assert_eq!(toks("0x7FFFFFFFFFFFFFFF"), vec![Tok::Int(i64::MAX), Tok::Eof]);
        // ...and the first one past it, which C wraps to i64::MIN.
        assert_eq!(toks("0x8000000000000000"), vec![Tok::Int(i64::MIN), Tok::Eof]);
    }

    #[test]
    fn lex_hex_all_ones_mask() {
        // The canonical all-ones mask must lex (to -1), not error.
        assert_eq!(toks("0xFFFFFFFFFFFFFFFF"), vec![Tok::Int(-1), Tok::Eof]);
        // 17 hex digits genuinely overflows u64 and stays an error.
        assert!(lex("0x1FFFFFFFFFFFFFFFF").is_err());
        // Bare `0x` with no digits is still rejected.
        assert!(lex("0x;").is_err());
    }

    #[test]
    fn lex_error_on_unknown_char() {
        assert!(lex("int @;").is_err());
    }

    #[test]
    fn lex_floats() {
        assert_eq!(toks("3.5"), vec![Tok::Float(3.5), Tok::Eof]);
    }
}
