//! AST → IR lowering with debug-metadata generation.
//!
//! This stage plays the role of Clang + the LLVM `-g` pipeline for the
//! reproduction: it resolves MiniC types against the IR [`TypeTable`],
//! checks the program, emits instructions through the
//! [`FunctionBuilder`], and — crucially for STI — records a [`VarInfo`]
//! (type, declaration scope, `const` permission) for every variable and
//! attaches a [`DebugLoc`] to every instruction, the facts the paper's
//! pass recovers from `llvm.dbg` metadata (§4.4).
//!
//! Lowering conventions that matter downstream:
//!
//! * every local and parameter lives in an `alloca` slot (LLVM `-O0`
//!   style), so every variable access is a `load`/`store` the
//!   instrumentation pass can see;
//! * *all* pointer casts — explicit `(T*)e` **and** implicit
//!   `T*`↔`void*` conversions at assignments, argument passing, and
//!   returns — lower to `BitCast`, mirroring Clang, because `BitCast` is
//!   the event the three RSTI mechanisms treat differently (§4.8);
//! * `malloc` is a first-class instruction returning a raw (unsigned)
//!   `void*`, like a call into uninstrumented libc.

use crate::ast::*;
use crate::error::CompileError;
use crate::parser::parse;
use rsti_ir::{
    BinOp, BlockId, CmpOp, DebugLoc, FieldDef, FuncId, FuncSig, FunctionBuilder, GlobalDef,
    GlobalId, GlobalInit, Module, Operand, Scope, StructDef, Type, TypeId, TypeTable, ValueId,
    VarInfo, VarKind,
};
use std::collections::HashMap;

/// Compiles MiniC source text into a verified IR [`Module`].
///
/// # Errors
/// Returns the first lexical, syntactic, or semantic error.
pub fn compile(src: &str, name: &str) -> Result<Module, CompileError> {
    let tel = rsti_telemetry::global();
    let items = {
        let _span = tel.span(rsti_telemetry::Phase::Parse);
        parse(src)?
    };
    let _span = tel.span(rsti_telemetry::Phase::Lower);
    let mut lower = Lower::new(name);
    lower.run(&items)?;
    debug_assert!(
        rsti_ir::verify_module(&lower.module).is_ok(),
        "frontend produced ill-formed IR: {:#?}",
        rsti_ir::verify_module(&lower.module).unwrap_err()
    );
    Ok(lower.module)
}

/// Resolves a syntactic type against the type table.
fn resolve_type(
    types: &mut TypeTable,
    t: &AstType,
    line: u32,
) -> Result<TypeId, CompileError> {
    Ok(match t {
        AstType::Void => types.void(),
        AstType::Bool => types.bool(),
        AstType::Char => types.i8(),
        AstType::Short => types.i16(),
        AstType::Int => types.i32(),
        AstType::Long => types.i64(),
        AstType::Double => types.f64(),
        AstType::Struct(name) => {
            let sid = types
                .struct_by_name(name)
                .ok_or_else(|| CompileError::new(line, format!("unknown struct `{name}`")))?;
            types.intern(Type::Struct(sid))
        }
        AstType::Ptr(inner) => {
            let p = resolve_type(types, inner, line)?;
            types.ptr(p)
        }
        AstType::Array(elem, n) => {
            let e = resolve_type(types, elem, line)?;
            types.array(e, *n)
        }
        AstType::FuncPtr { ret, params } => {
            let r = resolve_type(types, ret, line)?;
            let ps = params
                .iter()
                .map(|p| resolve_type(types, p, line))
                .collect::<Result<Vec<_>, _>>()?;
            let f = types.func(FuncSig::new(r, ps));
            types.ptr(f)
        }
    })
}

/// Module-level symbol environment (kept apart from [`Module`] so function
/// lowering can borrow both disjointly).
#[derive(Default)]
struct Env {
    funcs: HashMap<String, FuncId>,
    globals: HashMap<String, (GlobalId, TypeId, bool)>,
}

struct Lower {
    module: Module,
    env: Env,
}

/// A typed rvalue.
#[derive(Debug, Clone)]
struct TV {
    op: Operand,
    ty: TypeId,
}

/// A typed lvalue: the address holding a value of type `ty`.
#[derive(Debug, Clone)]
struct LV {
    addr: Operand,
    ty: TypeId,
    is_const: bool,
}

struct LocalSym {
    slot: ValueId,
    ty: TypeId,
    is_const: bool,
}

impl Lower {
    fn new(name: &str) -> Self {
        Lower { module: Module::new(name), env: Env::default() }
    }

    fn run(&mut self, items: &[Item]) -> Result<(), CompileError> {
        // Pass 1: declare struct names (allows self-reference), then fields.
        for item in items {
            if let Item::Struct { name, line, .. } = item {
                if self.module.types.struct_by_name(name).is_some() {
                    return Err(CompileError::new(*line, format!("duplicate struct `{name}`")));
                }
                self.module
                    .types
                    .declare_struct(StructDef { name: clone_name(name), fields: vec![] });
            }
        }
        for item in items {
            if let Item::Struct { name, fields, .. } = item {
                let mut defs = Vec::with_capacity(fields.len());
                for f in fields {
                    let ty = resolve_type(&mut self.module.types, &f.ty, f.line)?;
                    defs.push(FieldDef { name: clone_name(&f.name), ty, is_const: f.is_const });
                }
                let sid = self.module.types.struct_by_name(name).expect("declared above");
                self.module.types.struct_def_mut(sid).fields = defs;
            }
        }

        // Pass 2: declare functions (so bodies can forward-reference).
        for item in items {
            if let Item::Func { ret, name, params, is_extern, line, body } = item {
                if self.env.funcs.contains_key(name) {
                    return Err(CompileError::new(*line, format!("duplicate function `{name}`")));
                }
                let r = resolve_type(&mut self.module.types, ret, *line)?;
                let ps = params
                    .iter()
                    .map(|p| resolve_type(&mut self.module.types, &p.ty, p.line))
                    .collect::<Result<Vec<_>, _>>()?;
                let mut sig = FuncSig::new(r, ps);
                // Extern declarations behave like C prototypes with varargs
                // laxity only when declared with empty parameter list.
                sig.varargs = *is_extern && params.is_empty();
                let fid = self.module.declare_func(
                    clone_name(name),
                    sig,
                    *is_extern && body.is_none(),
                );
                self.env.funcs.insert(clone_name(name), fid);
            }
        }

        // Pass 3: globals.
        for item in items {
            if let Item::Global { ty, name, is_const, init, line } = item {
                self.lower_global(ty, name, *is_const, init.as_ref(), *line)?;
            }
        }

        // Pass 4: function bodies.
        for item in items {
            if let Item::Func { name, params, body: Some(body), .. } = item {
                let fid = self.env.funcs[name];
                self.lower_body(fid, params, body)?;
            }
        }
        Ok(())
    }

    fn lower_global(
        &mut self,
        ty: &AstType,
        name: &str,
        is_const: bool,
        init: Option<&Expr>,
        line: u32,
    ) -> Result<(), CompileError> {
        if self.env.globals.contains_key(name) {
            return Err(CompileError::new(line, format!("duplicate global `{name}`")));
        }
        let tid = resolve_type(&mut self.module.types, ty, line)?;
        let ginit = match init {
            None => GlobalInit::Zero,
            Some(Expr::IntLit(v, _)) => GlobalInit::Int(*v),
            Some(Expr::CharLit(c, _)) => GlobalInit::Int(*c as i64),
            Some(Expr::BoolLit(b, _)) => GlobalInit::Int(*b as i64),
            Some(Expr::Null(_)) => GlobalInit::Zero,
            Some(Expr::StrLit(s, _)) => GlobalInit::Str(self.module.intern_str(s.as_str())),
            Some(Expr::Var(f, l)) => {
                let fid = self.env.funcs.get(f).ok_or_else(|| {
                    CompileError::new(*l, format!("global initializer must be constant or a function name, `{f}` is neither"))
                })?;
                GlobalInit::FuncAddr(*fid)
            }
            Some(e) => {
                return Err(CompileError::new(
                    e.line(),
                    "global initializers must be constants",
                ))
            }
        };
        let var = self.module.add_var(VarInfo {
            name: clone_name(name),
            ty: tid,
            scope: Scope::Module,
            is_const,
            kind: VarKind::Global,
            line,
        });
        let gid = GlobalId(self.module.globals.len() as u32);
        self.module.globals.push(GlobalDef {
            name: clone_name(name),
            ty: tid,
            var,
            init: ginit,
        });
        self.env.globals.insert(clone_name(name), (gid, tid, is_const));
        Ok(())
    }

    fn lower_body(
        &mut self,
        fid: FuncId,
        params: &[Param],
        body: &Block,
    ) -> Result<(), CompileError> {
        let env = &self.env;
        let ret_ty = self.module.funcs[fid.0 as usize].sig.ret;
        let b = FunctionBuilder::new(&mut self.module, fid);
        let scope = Scope::Function(fid.0);
        let mut fl = FnLower {
            b,
            env,
            scope,
            ret_ty,
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
        };

        // Spill parameters into allocas so they are addressable, mutable,
        // and visible to the instrumentation pass as ordinary stores.
        for (i, p) in params.iter().enumerate() {
            fl.b.set_loc(DebugLoc::new(scope, p.line));
            let ty = resolve_type(&mut fl.b.module.types, &p.ty, p.line)?;
            let var = fl.b.module.add_var(VarInfo {
                name: clone_name(&p.name),
                ty,
                scope,
                is_const: p.is_const,
                kind: VarKind::Param,
                line: p.line,
            });
            fl.b.set_param_var(i, var);
            let slot = fl.b.alloca(ty, Some(var));
            let pv = fl.b.param(i);
            fl.b.store(pv, slot);
            fl.declare_local(&p.name, LocalSym { slot, ty, is_const: p.is_const }, p.line)?;
        }

        fl.block(body)?;

        // Fall-through return.
        if !fl.b.current_terminated() {
            let void = fl.b.module.types.void();
            if ret_ty == void {
                fl.b.ret(None);
            } else if fl.b.module.types.is_ptr(ret_ty) {
                fl.b.ret(Some(Operand::Null(ret_ty)));
            } else if ret_ty == fl.b.module.types.f64() {
                fl.b.ret(Some(Operand::float(0.0, ret_ty)));
            } else {
                fl.b.ret(Some(Operand::ConstInt(0, ret_ty)));
            }
        }
        fl.b.finish();
        Ok(())
    }
}

fn clone_name(s: &str) -> String {
    s.to_string()
}

struct FnLower<'m> {
    b: FunctionBuilder<'m>,
    env: &'m Env,
    scope: Scope,
    ret_ty: TypeId,
    scopes: Vec<HashMap<String, LocalSym>>,
    loops: Vec<(BlockId, BlockId)>, // (continue target, break target)
}

impl FnLower<'_> {
    fn declare_local(
        &mut self,
        name: &str,
        sym: LocalSym,
        line: u32,
    ) -> Result<(), CompileError> {
        let top = self.scopes.last_mut().expect("scope stack never empty");
        if top.contains_key(name) {
            return Err(CompileError::new(line, format!("duplicate variable `{name}`")));
        }
        top.insert(name.to_string(), sym);
        Ok(())
    }

    fn lookup_local(&self, name: &str) -> Option<&LocalSym> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn numeric_rank(&self, ty: TypeId) -> Option<u8> {
        let t = self.b.module.types.get(ty);
        Some(match t {
            Type::Bool => 0,
            Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 => 3,
            Type::I64 => 4,
            Type::F64 => 5,
            _ => return None,
        })
    }

    /// Converts `tv` to `want`, inserting `Convert` for numerics and
    /// `BitCast` for pointer/pointer (the implicit conversions Clang
    /// materialises in IR).
    fn coerce(&mut self, tv: TV, want: TypeId, line: u32) -> Result<Operand, CompileError> {
        if tv.ty == want {
            return Ok(tv.op);
        }
        let types = &self.b.module.types;
        let src_ptr = types.is_ptr(tv.ty);
        let dst_ptr = types.is_ptr(want);
        if let Operand::Null(_) = tv.op {
            if dst_ptr {
                return Ok(Operand::Null(want));
            }
        }
        if src_ptr && dst_ptr {
            return Ok(self.b.bitcast(tv.op, want).into());
        }
        if self.numeric_rank(tv.ty).is_some() && self.numeric_rank(want).is_some() {
            return Ok(self.b.convert(tv.op, want).into());
        }
        Err(CompileError::new(
            line,
            format!(
                "cannot convert `{}` to `{}`",
                self.b.module.types.display(tv.ty),
                self.b.module.types.display(want)
            ),
        ))
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self, blk: &Block) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in &blk.stmts {
            if self.b.current_terminated() {
                break; // dead code after return/break
            }
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Decl { ty, name, is_const, init, line } => {
                self.b.set_loc(DebugLoc::new(self.scope, *line));
                let tid = resolve_type(&mut self.b.module.types, ty, *line)?;
                let var = self.b.module.add_var(VarInfo {
                    name: clone_name(name),
                    ty: tid,
                    scope: self.scope,
                    is_const: *is_const,
                    kind: VarKind::Local,
                    line: *line,
                });
                let slot = self.b.alloca(tid, Some(var));
                if let Some(e) = init {
                    let v = self.expr(e)?;
                    let v = self.coerce(v, tid, *line)?;
                    self.b.store(v, slot);
                }
                self.declare_local(name, LocalSym { slot, ty: tid, is_const: *is_const }, *line)
            }
            Stmt::Expr(e) => {
                self.b.set_loc(DebugLoc::new(self.scope, e.line()));
                self.expr(e).map(|_| ())
            }
            Stmt::Assign { target, value, line } => {
                self.b.set_loc(DebugLoc::new(self.scope, *line));
                let lv = self.lvalue(target)?;
                if lv.is_const {
                    return Err(CompileError::new(*line, "assignment to const variable"));
                }
                let v = self.expr(value)?;
                let v = self.coerce(v, lv.ty, *line)?;
                self.b.store(v, lv.addr);
                Ok(())
            }
            Stmt::If { cond, then_blk, else_blk, line } => {
                self.b.set_loc(DebugLoc::new(self.scope, *line));
                let c = self.cond_value(cond)?;
                let then_bb = self.b.new_block();
                let else_bb = self.b.new_block();
                let join = self.b.new_block();
                self.b.cond_br(c, then_bb, else_bb);
                self.b.switch_to(then_bb);
                self.block(then_blk)?;
                if !self.b.current_terminated() {
                    self.b.br(join);
                }
                self.b.switch_to(else_bb);
                if let Some(e) = else_blk {
                    self.block(e)?;
                }
                if !self.b.current_terminated() {
                    self.b.br(join);
                }
                self.b.switch_to(join);
                Ok(())
            }
            Stmt::While { cond, body, line } => {
                self.b.set_loc(DebugLoc::new(self.scope, *line));
                let head = self.b.new_block();
                let body_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(head);
                self.b.switch_to(head);
                let c = self.cond_value(cond)?;
                self.b.cond_br(c, body_bb, exit);
                self.b.switch_to(body_bb);
                self.loops.push((head, exit));
                self.block(body)?;
                self.loops.pop();
                if !self.b.current_terminated() {
                    self.b.br(head);
                }
                self.b.switch_to(exit);
                Ok(())
            }
            Stmt::DoWhile { cond, body, line } => {
                self.b.set_loc(DebugLoc::new(self.scope, *line));
                let body_bb = self.b.new_block();
                let check = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(body_bb);
                self.b.switch_to(body_bb);
                self.loops.push((check, exit));
                self.block(body)?;
                self.loops.pop();
                if !self.b.current_terminated() {
                    self.b.br(check);
                }
                self.b.switch_to(check);
                let c = self.cond_value(cond)?;
                self.b.cond_br(c, body_bb, exit);
                self.b.switch_to(exit);
                Ok(())
            }
            Stmt::For { init, cond, step, body, line } => {
                self.b.set_loc(DebugLoc::new(self.scope, *line));
                self.scopes.push(HashMap::new()); // for-scope for the decl
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let head = self.b.new_block();
                let body_bb = self.b.new_block();
                let step_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(head);
                self.b.switch_to(head);
                match cond {
                    Some(c) => {
                        let cv = self.cond_value(c)?;
                        self.b.cond_br(cv, body_bb, exit);
                    }
                    None => self.b.br(body_bb),
                }
                self.b.switch_to(body_bb);
                self.loops.push((step_bb, exit));
                self.block(body)?;
                self.loops.pop();
                if !self.b.current_terminated() {
                    self.b.br(step_bb);
                }
                self.b.switch_to(step_bb);
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.b.br(head);
                self.b.switch_to(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(v, line) => {
                self.b.set_loc(DebugLoc::new(self.scope, *line));
                let void = self.b.module.types.void();
                match v {
                    None => {
                        if self.ret_ty != void {
                            return Err(CompileError::new(*line, "missing return value"));
                        }
                        self.b.ret(None);
                    }
                    Some(e) => {
                        if self.ret_ty == void {
                            return Err(CompileError::new(*line, "void function returns a value"));
                        }
                        let tv = self.expr(e)?;
                        let op = self.coerce(tv, self.ret_ty, *line)?;
                        self.b.ret(Some(op));
                    }
                }
                Ok(())
            }
            Stmt::Break(line) => {
                let &(_, exit) = self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::new(*line, "break outside loop"))?;
                self.b.br(exit);
                Ok(())
            }
            Stmt::Continue(line) => {
                let &(cont, _) = self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::new(*line, "continue outside loop"))?;
                self.b.br(cont);
                Ok(())
            }
            Stmt::Block(b) => self.block(b),
        }
    }

    /// Lowers an expression used as a branch condition into a `bool`.
    fn cond_value(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        let tv = self.expr(e)?;
        let bty = self.b.module.types.bool();
        if tv.ty == bty {
            return Ok(tv.op);
        }
        // C truthiness: nonzero / non-null.
        if self.b.module.types.is_ptr(tv.ty) {
            let null = Operand::Null(tv.ty);
            return Ok(self.b.cmp(CmpOp::Ne, tv.op, null).into());
        }
        if self.numeric_rank(tv.ty).is_some() {
            let zero = if tv.ty == self.b.module.types.f64() {
                Operand::float(0.0, tv.ty)
            } else {
                Operand::ConstInt(0, tv.ty)
            };
            return Ok(self.b.cmp(CmpOp::Ne, tv.op, zero).into());
        }
        Err(CompileError::new(e.line(), "condition is not scalar"))
    }

    // ---- lvalues ----------------------------------------------------------

    fn lvalue(&mut self, e: &Expr) -> Result<LV, CompileError> {
        match e {
            Expr::Var(name, line) => {
                if let Some(sym) = self.lookup_local(name) {
                    return Ok(LV {
                        addr: sym.slot.into(),
                        ty: sym.ty,
                        is_const: sym.is_const,
                    });
                }
                if let Some(&(gid, ty, is_const)) = self.env.globals.get(name.as_str()) {
                    let pty = self.b.module.types.ptr(ty);
                    return Ok(LV { addr: Operand::GlobalAddr(gid, pty), ty, is_const });
                }
                Err(CompileError::new(*line, format!("unknown variable `{name}`")))
            }
            Expr::Unary { op: UnOp::Deref, expr, line } => {
                let tv = self.expr(expr)?;
                let pointee = self.b.module.types.pointee(tv.ty).ok_or_else(|| {
                    CompileError::new(*line, "dereference of non-pointer")
                })?;
                Ok(LV { addr: tv.op, ty: pointee, is_const: false })
            }
            Expr::Member { base, field, arrow, line } => {
                let (base_addr, sid) = if *arrow {
                    let tv = self.expr(base)?;
                    let pointee = self.b.module.types.pointee(tv.ty).ok_or_else(|| {
                        CompileError::new(*line, "`->` on non-pointer")
                    })?;
                    let Type::Struct(sid) = *self.b.module.types.get(pointee) else {
                        return Err(CompileError::new(*line, "`->` on non-struct pointer"));
                    };
                    (tv.op, sid)
                } else {
                    let lv = self.lvalue(base)?;
                    let Type::Struct(sid) = *self.b.module.types.get(lv.ty) else {
                        return Err(CompileError::new(*line, "`.` on non-struct"));
                    };
                    (lv.addr, sid)
                };
                let def = self.b.module.types.struct_def(sid);
                let idx = def.field_index(field).ok_or_else(|| {
                    CompileError::new(
                        *line,
                        format!("no field `{field}` in struct {}", def.name),
                    )
                })?;
                let fdef = &def.fields[idx];
                let (fty, fconst) = (fdef.ty, fdef.is_const);
                let fa = self.b.field_addr(base_addr, sid, idx);
                Ok(LV { addr: fa.into(), ty: fty, is_const: fconst })
            }
            Expr::Index { base, index, line } => {
                let idx = self.expr(index)?;
                let i64t = self.b.module.types.i64();
                let idx = self.coerce(idx, i64t, *line)?;
                // Array variable: index its storage. Pointer: index through
                // its value.
                let base_info = self.try_lvalue_array(base)?;
                if let Some((arr_addr, elem)) = base_info {
                    let ea = self.b.index_addr(arr_addr, idx, elem);
                    return Ok(LV { addr: ea.into(), ty: elem, is_const: false });
                }
                let tv = self.expr(base)?;
                let pointee = self.b.module.types.pointee(tv.ty).ok_or_else(|| {
                    CompileError::new(*line, "indexing a non-pointer")
                })?;
                let ea = self.b.index_addr(tv.op, idx, pointee);
                Ok(LV { addr: ea.into(), ty: pointee, is_const: false })
            }
            other => Err(CompileError::new(other.line(), "expression is not assignable")),
        }
    }

    /// When `base` is an lvalue of array type, returns (address of array,
    /// element type) — `arr[i]` then indexes the storage directly.
    fn try_lvalue_array(&mut self, base: &Expr) -> Result<Option<(Operand, TypeId)>, CompileError> {
        let is_array_lv = match base {
            Expr::Var(name, _) => self
                .lookup_local(name)
                .map(|s| matches!(self.b.module.types.get(s.ty), Type::Array(..)))
                .or_else(|| {
                    self.env.globals.get(name.as_str()).map(|&(_, ty, _)| {
                        matches!(self.b.module.types.get(ty), Type::Array(..))
                    })
                })
                .unwrap_or(false),
            Expr::Member { .. } => {
                // field of array type — resolve via lvalue and inspect
                // (cheap: we re-lower below only when it is an array).
                false
            }
            _ => false,
        };
        if !is_array_lv {
            return Ok(None);
        }
        let lv = self.lvalue(base)?;
        let Type::Array(elem, _) = *self.b.module.types.get(lv.ty) else {
            return Ok(None);
        };
        Ok(Some((lv.addr, elem)))
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Result<TV, CompileError> {
        match e {
            Expr::IntLit(v, _) => {
                let t = self.b.module.types.i32();
                Ok(TV { op: Operand::ConstInt(*v, t), ty: t })
            }
            Expr::FloatLit(v, _) => {
                let t = self.b.module.types.f64();
                Ok(TV { op: Operand::float(*v, t), ty: t })
            }
            Expr::CharLit(c, _) => {
                let t = self.b.module.types.i8();
                Ok(TV { op: Operand::ConstInt(*c as i64, t), ty: t })
            }
            Expr::BoolLit(v, _) => {
                let t = self.b.module.types.bool();
                Ok(TV { op: Operand::ConstInt(*v as i64, t), ty: t })
            }
            Expr::StrLit(s, _) => {
                let sid = self.b.module.intern_str(s.as_str());
                let t = self.b.module.types.char_ptr();
                Ok(TV { op: Operand::Str(sid, t), ty: t })
            }
            Expr::Null(_) => {
                let t = self.b.module.types.void_ptr();
                Ok(TV { op: Operand::Null(t), ty: t })
            }
            Expr::Sizeof(t, line) => {
                let tid = resolve_type(&mut self.b.module.types, t, *line)?;
                let sz = self.b.module.types.size_of(tid);
                let i64t = self.b.module.types.i64();
                Ok(TV { op: Operand::ConstInt(sz as i64, i64t), ty: i64t })
            }
            Expr::Var(name, line) => {
                if let Some(sym) = self.lookup_local(name) {
                    let (slot, ty) = (sym.slot, sym.ty);
                    // Arrays decay to a pointer to their first element.
                    if let Type::Array(elem, _) = *self.b.module.types.get(ty) {
                        let zero = Operand::ConstInt(0, self.b.module.types.i64());
                        let pa = self.b.index_addr(slot, zero, elem);
                        let pty = self.b.module.types.ptr(elem);
                        let cast = self.b.bitcast(pa, pty);
                        return Ok(TV { op: cast.into(), ty: pty });
                    }
                    let v = self.b.load(slot, ty);
                    return Ok(TV { op: v.into(), ty });
                }
                if let Some(&(gid, ty, _)) = self.env.globals.get(name.as_str()) {
                    let pty = self.b.module.types.ptr(ty);
                    if let Type::Array(elem, _) = *self.b.module.types.get(ty) {
                        let zero = Operand::ConstInt(0, self.b.module.types.i64());
                        let pa =
                            self.b.index_addr(Operand::GlobalAddr(gid, pty), zero, elem);
                        let ety = self.b.module.types.ptr(elem);
                        let cast = self.b.bitcast(pa, ety);
                        return Ok(TV { op: cast.into(), ty: ety });
                    }
                    let v = self.b.load(Operand::GlobalAddr(gid, pty), ty);
                    return Ok(TV { op: v.into(), ty });
                }
                if let Some(&fid) = self.env.funcs.get(name.as_str()) {
                    let sig = self.b.module.funcs[fid.0 as usize].sig.clone();
                    let fty = self.b.module.types.func(sig);
                    let pty = self.b.module.types.ptr(fty);
                    return Ok(TV { op: Operand::FuncAddr(fid, pty), ty: pty });
                }
                Err(CompileError::new(*line, format!("unknown identifier `{name}`")))
            }
            Expr::Unary { op, expr, line } => self.unary(*op, expr, *line),
            Expr::Binary { op, lhs, rhs, line } => self.binary(*op, lhs, rhs, *line),
            Expr::Call { callee, args, line } => self.call(callee, args, *line),
            Expr::Member { .. } | Expr::Index { .. } => {
                let lv = self.lvalue(e)?;
                let v = self.b.load(lv.addr, lv.ty);
                Ok(TV { op: v.into(), ty: lv.ty })
            }
            Expr::Cast { ty, expr, line } => {
                let tv = self.expr(expr)?;
                let want = resolve_type(&mut self.b.module.types, ty, *line)?;
                if tv.ty == want {
                    return Ok(tv);
                }
                let sp = self.b.module.types.is_ptr(tv.ty);
                let dp = self.b.module.types.is_ptr(want);
                if sp && dp {
                    if let Operand::Null(_) = tv.op {
                        return Ok(TV { op: Operand::Null(want), ty: want });
                    }
                    let c = self.b.bitcast(tv.op, want);
                    return Ok(TV { op: c.into(), ty: want });
                }
                if self.numeric_rank(tv.ty).is_some() && self.numeric_rank(want).is_some() {
                    let c = self.b.convert(tv.op, want);
                    return Ok(TV { op: c.into(), ty: want });
                }
                Err(CompileError::new(
                    *line,
                    format!(
                        "unsupported cast from `{}` to `{}`",
                        self.b.module.types.display(tv.ty),
                        self.b.module.types.display(want)
                    ),
                ))
            }
        }
    }

    fn unary(&mut self, op: UnOp, inner: &Expr, line: u32) -> Result<TV, CompileError> {
        match op {
            UnOp::Neg => {
                let tv = self.expr(inner)?;
                if self.numeric_rank(tv.ty).is_none() {
                    return Err(CompileError::new(line, "negation of non-numeric"));
                }
                let zero = if tv.ty == self.b.module.types.f64() {
                    Operand::float(0.0, tv.ty)
                } else {
                    Operand::ConstInt(0, tv.ty)
                };
                let r = self.b.bin(BinOp::Sub, zero, tv.op, tv.ty);
                Ok(TV { op: r.into(), ty: tv.ty })
            }
            UnOp::Not => {
                let c = self.cond_value(inner)?;
                let bty = self.b.module.types.bool();
                let t = Operand::ConstInt(0, bty);
                let r = self.b.cmp(CmpOp::Eq, c, t);
                Ok(TV { op: r.into(), ty: bty })
            }
            UnOp::Deref => {
                let tv = self.expr(inner)?;
                let pointee = self
                    .b
                    .module
                    .types
                    .pointee(tv.ty)
                    .ok_or_else(|| CompileError::new(line, "dereference of non-pointer"))?;
                if pointee == self.b.module.types.void() {
                    return Err(CompileError::new(line, "dereference of void*"));
                }
                let v = self.b.load(tv.op, pointee);
                Ok(TV { op: v.into(), ty: pointee })
            }
            UnOp::AddrOf => {
                // &func yields the function pointer itself.
                if let Expr::Var(name, _) = inner {
                    if self.lookup_local(name).is_none()
                        && !self.env.globals.contains_key(name.as_str())
                    {
                        if let Some(&fid) = self.env.funcs.get(name.as_str()) {
                            let sig = self.b.module.funcs[fid.0 as usize].sig.clone();
                            let fty = self.b.module.types.func(sig);
                            let pty = self.b.module.types.ptr(fty);
                            return Ok(TV { op: Operand::FuncAddr(fid, pty), ty: pty });
                        }
                    }
                }
                let lv = self.lvalue(inner)?;
                let pty = self.b.module.types.ptr(lv.ty);
                // The lvalue address operand may be typed `T*` already
                // (alloca result); re-type via bitcast only when needed.
                let aty = self.b.operand_type(&lv.addr);
                if aty == pty {
                    Ok(TV { op: lv.addr, ty: pty })
                } else {
                    let c = self.b.bitcast(lv.addr, pty);
                    Ok(TV { op: c.into(), ty: pty })
                }
            }
        }
    }

    fn binary(
        &mut self,
        op: BinOpAst,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<TV, CompileError> {
        let bty = self.b.module.types.bool();
        match op {
            BinOpAst::LogAnd | BinOpAst::LogOr => {
                // Short-circuit via a temporary bool slot.
                let slot = self.b.alloca(bty, None);
                let lv = self.cond_value(lhs)?;
                self.b.store(lv.clone(), slot);
                let rhs_bb = self.b.new_block();
                let join = self.b.new_block();
                if op == BinOpAst::LogAnd {
                    self.b.cond_br(lv, rhs_bb, join);
                } else {
                    self.b.cond_br(lv, join, rhs_bb);
                }
                self.b.switch_to(rhs_bb);
                let rv = self.cond_value(rhs)?;
                self.b.store(rv, slot);
                self.b.br(join);
                self.b.switch_to(join);
                let out = self.b.load(slot, bty);
                Ok(TV { op: out.into(), ty: bty })
            }
            BinOpAst::Eq | BinOpAst::Ne | BinOpAst::Lt | BinOpAst::Le | BinOpAst::Gt
            | BinOpAst::Ge => {
                let a = self.expr(lhs)?;
                let b = self.expr(rhs)?;
                let cmp_op = match op {
                    BinOpAst::Eq => CmpOp::Eq,
                    BinOpAst::Ne => CmpOp::Ne,
                    BinOpAst::Lt => CmpOp::Lt,
                    BinOpAst::Le => CmpOp::Le,
                    BinOpAst::Gt => CmpOp::Gt,
                    _ => CmpOp::Ge,
                };
                let (ao, bo) = self.unify(a, b, line)?;
                let r = self.b.cmp(cmp_op, ao, bo);
                Ok(TV { op: r.into(), ty: bty })
            }
            _ => {
                let a = self.expr(lhs)?;
                let bb = self.expr(rhs)?;
                // Pointer arithmetic: ptr ± int.
                let a_ptr = self.b.module.types.is_ptr(a.ty);
                let b_ptr = self.b.module.types.is_ptr(bb.ty);
                if a_ptr && !b_ptr && matches!(op, BinOpAst::Add | BinOpAst::Sub) {
                    let pointee = self.b.module.types.pointee(a.ty).expect("checked");
                    let i64t = self.b.module.types.i64();
                    let mut idx = self.coerce(bb, i64t, line)?;
                    if op == BinOpAst::Sub {
                        let z = Operand::ConstInt(0, i64t);
                        idx = self.b.bin(BinOp::Sub, z, idx, i64t).into();
                    }
                    let r = self.b.index_addr(a.op, idx, pointee);
                    return Ok(TV { op: r.into(), ty: a.ty });
                }
                if a_ptr || b_ptr {
                    return Err(CompileError::new(line, "unsupported pointer arithmetic"));
                }
                let bin_op = match op {
                    BinOpAst::Add => BinOp::Add,
                    BinOpAst::Sub => BinOp::Sub,
                    BinOpAst::Mul => BinOp::Mul,
                    BinOpAst::Div => BinOp::Div,
                    BinOpAst::Rem => BinOp::Rem,
                    BinOpAst::BitAnd => BinOp::And,
                    BinOpAst::BitOr => BinOp::Or,
                    BinOpAst::BitXor => BinOp::Xor,
                    BinOpAst::Shl => BinOp::Shl,
                    BinOpAst::Shr => BinOp::Shr,
                    _ => unreachable!("handled above"),
                };
                let ty = self.common_numeric(&a, &bb, line)?;
                let ao = self.coerce(a, ty, line)?;
                let bo = self.coerce(bb, ty, line)?;
                let r = self.b.bin(bin_op, ao, bo, ty);
                Ok(TV { op: r.into(), ty })
            }
        }
    }

    /// Unifies two comparison operands (numeric promotion or pointer/null).
    fn unify(&mut self, a: TV, b: TV, line: u32) -> Result<(Operand, Operand), CompileError> {
        let a_ptr = self.b.module.types.is_ptr(a.ty);
        let b_ptr = self.b.module.types.is_ptr(b.ty);
        if a_ptr && b_ptr {
            let bo = self.coerce(b, a.ty, line)?;
            return Ok((a.op, bo));
        }
        if a_ptr || b_ptr {
            return Err(CompileError::new(line, "comparison of pointer and non-pointer"));
        }
        let ty = self.common_numeric(&a, &b, line)?;
        let ao = self.coerce(a, ty, line)?;
        let bo = self.coerce(b, ty, line)?;
        Ok((ao, bo))
    }

    fn common_numeric(&mut self, a: &TV, b: &TV, line: u32) -> Result<TypeId, CompileError> {
        let ra = self
            .numeric_rank(a.ty)
            .ok_or_else(|| CompileError::new(line, "non-numeric operand"))?;
        let rb = self
            .numeric_rank(b.ty)
            .ok_or_else(|| CompileError::new(line, "non-numeric operand"))?;
        Ok(if ra >= rb { a.ty } else { b.ty })
    }

    fn call(&mut self, callee: &Expr, args: &[Expr], line: u32) -> Result<TV, CompileError> {
        let i64t = self.b.module.types.i64();
        let void = self.b.module.types.void();

        if let Expr::Var(name, _) = callee {
            // Builtins first.
            match name.as_str() {
                "malloc" => {
                    if args.len() != 1 {
                        return Err(CompileError::new(line, "malloc takes one argument"));
                    }
                    let sz = self.expr(&args[0])?;
                    let sz = self.coerce(sz, i64t, line)?;
                    let vp = self.b.module.types.void_ptr();
                    let r = self.b.malloc(sz, vp);
                    return Ok(TV { op: r.into(), ty: vp });
                }
                "free" => {
                    if args.len() != 1 {
                        return Err(CompileError::new(line, "free takes one argument"));
                    }
                    let p = self.expr(&args[0])?;
                    if !self.b.module.types.is_ptr(p.ty) {
                        return Err(CompileError::new(line, "free of non-pointer"));
                    }
                    self.b.free(p.op);
                    let z = Operand::ConstInt(0, i64t);
                    return Ok(TV { op: z, ty: i64t });
                }
                "print_int" => {
                    if args.len() != 1 {
                        return Err(CompileError::new(line, "print_int takes one argument"));
                    }
                    let v = self.expr(&args[0])?;
                    let v = self.coerce(v, i64t, line)?;
                    self.b.print_int(v);
                    let z = Operand::ConstInt(0, i64t);
                    return Ok(TV { op: z, ty: i64t });
                }
                "print_str" => {
                    let Some(Expr::StrLit(s, _)) = args.first() else {
                        return Err(CompileError::new(
                            line,
                            "print_str takes a string literal",
                        ));
                    };
                    let sid = self.b.module.intern_str(s.as_str());
                    self.b.print_str(sid);
                    let z = Operand::ConstInt(0, i64t);
                    return Ok(TV { op: z, ty: i64t });
                }
                _ => {}
            }
            // Direct call to a known function, unless shadowed by a local
            // or global function-pointer variable.
            if self.lookup_local(name).is_none()
                && !self.env.globals.contains_key(name.as_str())
            {
                if let Some(&fid) = self.env.funcs.get(name.as_str()) {
                    let sig = self.b.module.funcs[fid.0 as usize].sig.clone();
                    let lowered = self.call_args(&sig, args, line)?;
                    let r = self.b.call(fid, lowered);
                    let ty = if sig.ret == void { i64t } else { sig.ret };
                    let op = match r {
                        Some(v) => v.into(),
                        None => Operand::ConstInt(0, i64t),
                    };
                    return Ok(TV { op, ty });
                }
            }
        }

        // Indirect call through a function-pointer expression.
        let f = self.expr(callee)?;
        let Some(pointee) = self.b.module.types.pointee(f.ty) else {
            return Err(CompileError::new(line, "call of non-function"));
        };
        let Type::Func(sig) = self.b.module.types.get(pointee).clone() else {
            return Err(CompileError::new(line, "call through non-function pointer"));
        };
        let lowered = self.call_args(&sig, args, line)?;
        let r = self.b.call_indirect(f.op, sig.clone(), lowered);
        let ty = if sig.ret == void { i64t } else { sig.ret };
        let op = match r {
            Some(v) => v.into(),
            None => Operand::ConstInt(0, i64t),
        };
        Ok(TV { op, ty })
    }

    fn call_args(
        &mut self,
        sig: &FuncSig,
        args: &[Expr],
        line: u32,
    ) -> Result<Vec<Operand>, CompileError> {
        if args.len() < sig.params.len() || (!sig.varargs && args.len() != sig.params.len()) {
            return Err(CompileError::new(
                line,
                format!("expected {} arguments, got {}", sig.params.len(), args.len()),
            ));
        }
        let mut out = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            let tv = self.expr(a)?;
            if let Some(&want) = sig.params.get(i) {
                out.push(self.coerce(tv, want, line)?);
            } else {
                out.push(tv.op); // varargs tail
            }
        }
        Ok(out)
    }
}
